package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
)

// Follower maintains a connection to a primary and replays one shard's
// stream into a local database. It reconnects with backoff after any
// disconnect, resuming from its own committed sequence — which the
// database recovered from its local WAL if the follower process itself
// restarted — so no external bookkeeping is needed to continue.
//
// Staleness is bounded and monotone: the follower's visible sequence
// (Seq) only ever advances. A reconnect can redeliver frames the follower
// already has, but replay skips them; a snapshot resync installs the
// primary's state at a sequence at or past everything the follower has
// seen, never behind it.
type Follower struct {
	db    *sqldb.DB
	addr  string
	shard int

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// forceSnap, when set, makes the next handshake request an impossible
	// sequence so the primary answers with a full snapshot. Set after a
	// replay error, which means local state diverged.
	forceSnap uint32

	// connects counts established streams (atomic); tests use it to wait
	// for a reconnect.
	connects uint64

	mu      sync.Mutex
	lastErr error
}

// StartFollower begins replicating shard from the primary at addr into db
// (which must be a durable database so replicated frames persist locally).
// The returned Follower runs until Close.
func StartFollower(db *sqldb.DB, addr string, shard int) *Follower {
	f := &Follower{db: db, addr: addr, shard: shard, closed: make(chan struct{})}
	f.wg.Add(1)
	go f.run()
	return f
}

// Probe asks the primary at addr how many shards it serves and its
// topology flags (FlagSharded or 0).
func Probe(addr string) (shards int, flags uint32, err error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, 0, fmt.Errorf("repl: probe %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // best-effort probe bound
	if err := writeHandshake(conn, probeShard, 0); err != nil {
		return 0, 0, err
	}
	return readReply(conn)
}

// Seq returns the follower's replay position: the sequence number of the
// last frame committed locally. Monotone non-decreasing for the life of
// the local database, across any number of reconnects.
func (f *Follower) Seq() uint64 { return f.db.Seq() }

// Connects returns how many times a stream has been established.
func (f *Follower) Connects() uint64 { return atomic.LoadUint64(&f.connects) }

// LastErr returns the most recent stream error (nil when none).
func (f *Follower) LastErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// WaitCaughtUp blocks until the follower's replay position reaches seq or
// the timeout expires.
func (f *Follower) WaitCaughtUp(seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if f.db.Seq() >= seq {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: follower at seq %d did not reach %d within %v (last error: %v)",
				f.db.Seq(), seq, timeout, f.LastErr())
		}
		select {
		case <-f.closed:
			return fmt.Errorf("repl: follower closed at seq %d (wanted %d)", f.db.Seq(), seq)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops the replication loop and waits for it to exit. The local
// database is left open (the caller owns it).
func (f *Follower) Close() {
	f.closeOnce.Do(func() { close(f.closed) })
	f.wg.Wait()
}

func (f *Follower) run() {
	defer f.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		select {
		case <-f.closed:
			return
		default:
		}
		before := atomic.LoadUint64(&f.connects)
		err := f.stream()
		select {
		case <-f.closed:
			return
		default:
		}
		if err != nil {
			f.mu.Lock()
			f.lastErr = err
			f.mu.Unlock()
		}
		if atomic.LoadUint64(&f.connects) > before {
			backoff = 5 * time.Millisecond // the stream was established; start fresh
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// stream runs one connection: handshake from the local commit position,
// then replay messages until the stream breaks. A partial message at the
// tear is discarded wholesale — replay only ever sees complete frames.
func (f *Follower) stream() error {
	conn, err := net.DialTimeout("tcp", f.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Unblock reads when Close is called.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-f.closed:
			conn.Close() //cryptdb:vet-ok durabilityerr: unblocking a reader on shutdown; the socket carries no durable state
		case <-done:
		}
	}()

	fromSeq := f.db.Seq()
	if atomic.SwapUint32(&f.forceSnap, 0) == 1 {
		// Request an impossible position; the primary answers with a full
		// snapshot, replacing our diverged state.
		fromSeq = ^uint64(0)
	}
	if err := writeHandshake(conn, uint32(f.shard), fromSeq); err != nil {
		return err
	}
	shards, _, err := readReply(conn)
	if err != nil {
		return err
	}
	if f.shard >= shards {
		return fmt.Errorf("repl: primary has %d shards, wanted shard %d", shards, f.shard)
	}
	atomic.AddUint64(&f.connects, 1)

	for {
		typ, payload, err := readMsg(conn)
		if err != nil {
			return err // disconnect (or tear): reconnect and resume
		}
		switch typ {
		case msgSnap:
			if len(payload) < 8 {
				return fmt.Errorf("repl: short snapshot message")
			}
			seq := binary.BigEndian.Uint64(payload)
			if err := f.db.ResetFromSnapshot(payload[8:], seq); err != nil {
				if isDurability(err) {
					break // state installed; only local disk persistence failed
				}
				atomic.StoreUint32(&f.forceSnap, 1)
				return fmt.Errorf("repl: snapshot resync: %w", err)
			}
		case msgFrames:
			frames, err := sqldb.SplitFrames(payload)
			if err != nil {
				return fmt.Errorf("repl: frame blob: %w", err)
			}
			for _, frame := range frames {
				if err := f.db.ApplyReplicatedFrame(frame); err != nil {
					if isDurability(err) {
						continue // applied in memory; local disk lagged
					}
					// Replay failure means divergence: full resync next.
					atomic.StoreUint32(&f.forceSnap, 1)
					return fmt.Errorf("repl: replay: %w", err)
				}
			}
		case msgErr:
			return fmt.Errorf("repl: primary: %s", string(payload))
		default:
			return fmt.Errorf("repl: unknown message type %d", typ)
		}
		if err := writeAck(conn, f.db.Seq()); err != nil {
			return err
		}
	}
}

func isDurability(err error) bool {
	var de *sqldb.DurabilityError
	return errors.As(err, &de)
}
