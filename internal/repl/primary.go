package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
)

// FaultAction is a fault injector's verdict on one outbound message.
type FaultAction int

const (
	// Pass sends the message normally.
	Pass FaultAction = iota
	// DropConn closes the connection without sending the message.
	DropConn
	// Truncate writes only Arg bytes of the wire message, then closes the
	// connection — a torn stream that can cut mid-frame.
	Truncate
	// Delay sleeps Arg milliseconds before sending normally.
	Delay
)

// FaultDecision pairs an action with its argument (byte count for
// Truncate, milliseconds for Delay).
type FaultDecision struct {
	Action FaultAction
	Arg    int
}

// FaultInjector lets a test intercept the primary's stream at every frame
// (and snapshot) boundary. wireLen is the full encoded message length, so
// a Truncate decision can target any byte inside the frame. Implemented by
// replfault.Script; nil means no interception.
type FaultInjector interface {
	OnFrame(shard int, seq uint64, wireLen int) FaultDecision
	OnSnapshot(shard int, seq uint64, wireLen int) FaultDecision
}

// FollowerStat describes one connected follower's replication progress.
type FollowerStat struct {
	Remote     string // follower's address
	Shard      int
	SentSeq    uint64 // last sequence written to the connection
	AckedSeq   uint64 // last sequence the follower confirmed applying
	PrimarySeq uint64 // the shard's current commit sequence (lag = PrimarySeq - AckedSeq)
}

// Primary accepts follower connections and ships each shard's WAL to them.
// One Primary serves every shard of an engine: followers request a shard
// index in their handshake. Purely additive — the primary's own commit
// path never waits for a follower (asynchronous replication), and a slow
// follower is disconnected by tap backpressure rather than ever stalling
// commits.
type Primary struct {
	dbs   []*sqldb.DB
	flags uint32
	ln    net.Listener

	mu        sync.Mutex
	followers map[*followerConn]struct{}
	inj       FaultInjector
	closed    bool

	wg sync.WaitGroup
}

type followerConn struct {
	conn   net.Conn
	shard  int
	remote string
	sent   uint64 // atomic
	acked  uint64 // atomic
}

// NewPrimary starts serving the given per-shard databases on addr
// (host:port; port 0 picks a free one). flags describe the engine's
// topology to followers (FlagSharded or 0). Close stops the listener and
// disconnects every follower.
func NewPrimary(dbs []*sqldb.DB, addr string, flags uint32) (*Primary, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("repl: no databases to replicate")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen %s: %w", addr, err)
	}
	p := &Primary{dbs: dbs, flags: flags, ln: ln, followers: make(map[*followerConn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listening address (useful with port 0).
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// ShardSeq returns the current commit sequence of one shard — the target
// a fully caught-up follower of that shard must reach.
func (p *Primary) ShardSeq(shard int) uint64 { return p.dbs[shard].Seq() }

// SetFaultInjector installs (or clears, with nil) the stream interceptor.
// Takes effect for messages sent after the call.
func (p *Primary) SetFaultInjector(inj FaultInjector) {
	p.mu.Lock()
	p.inj = inj
	p.mu.Unlock()
}

func (p *Primary) injector() FaultInjector {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inj
}

// FollowerStats reports every connected follower's progress.
func (p *Primary) FollowerStats() []FollowerStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	stats := make([]FollowerStat, 0, len(p.followers))
	for fc := range p.followers {
		stats = append(stats, FollowerStat{
			Remote:     fc.remote,
			Shard:      fc.shard,
			SentSeq:    atomic.LoadUint64(&fc.sent),
			AckedSeq:   atomic.LoadUint64(&fc.acked),
			PrimarySeq: p.dbs[fc.shard].Seq(),
		})
	}
	return stats
}

// Close stops accepting, disconnects every follower and waits for the
// serving goroutines to finish.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.followers))
	for fc := range p.followers {
		conns = append(conns, fc.conn)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close() //cryptdb:vet-ok durabilityerr: follower sockets; durable state lives in each side's own WAL
	}
	p.wg.Wait()
	return err
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serveConn(conn)
		}()
	}
}

// serveConn handles one follower for its whole life: handshake, catch-up
// (log tail or snapshot + tail), then live streaming until either side
// drops.
func (p *Primary) serveConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck // best-effort handshake bound
	shard32, fromSeq, err := readHandshake(conn)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // clear the handshake bound
	if shard32 == probeShard {
		writeReply(conn, len(p.dbs), p.flags) //nolint:errcheck // probe reply; peer handles short read
		return
	}
	shard := int(shard32)
	if shard < 0 || shard >= len(p.dbs) {
		conn.Write(encodeMsg(msgErr, []byte(fmt.Sprintf("no shard %d (have %d)", shard, len(p.dbs))))) //cryptdb:vet-ok durabilityerr: best-effort terminal notice; the follower treats any tear as a disconnect
		return
	}
	if err := writeReply(conn, len(p.dbs), p.flags); err != nil {
		return
	}

	db := p.dbs[shard]
	tap, err := db.TapWAL(fromSeq)
	var snapMsg []byte
	var snapSeq uint64
	if errors.Is(err, sqldb.ErrSeqTruncated) {
		// The follower's position is gone from the log (or ahead of us):
		// seed it with a full snapshot, then stream the tail.
		ops, seq, stap, serr := db.TapWithSnapshot()
		if serr != nil {
			conn.Write(encodeMsg(msgErr, []byte(serr.Error()))) //cryptdb:vet-ok durabilityerr: best-effort terminal notice; the follower treats any tear as a disconnect
			return
		}
		payload := make([]byte, 8+len(ops))
		binary.BigEndian.PutUint64(payload, seq)
		copy(payload[8:], ops)
		snapMsg, snapSeq = payload, seq
		tap = stap
	} else if err != nil {
		conn.Write(encodeMsg(msgErr, []byte(err.Error()))) //cryptdb:vet-ok durabilityerr: best-effort terminal notice; the follower treats any tear as a disconnect
		return
	}
	defer tap.Close()

	fc := &followerConn{conn: conn, shard: shard, remote: conn.RemoteAddr().String()}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.followers[fc] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.followers, fc)
		p.mu.Unlock()
	}()

	// Ack reader: tracks the follower's replay position and doubles as the
	// disconnect detector — its read error closes the tap, which wakes the
	// stream loop out of Frames() so serveConn can exit.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			seq, err := readAck(conn)
			if err != nil {
				tap.Close()
				return
			}
			atomic.StoreUint64(&fc.acked, seq)
		}
	}()

	if snapMsg != nil {
		if !p.sendMsg(fc, msgSnap, snapMsg, snapSeq) {
			<-ackDone
			return
		}
	}
	for {
		blob, err := tap.Frames()
		if err != nil {
			if errors.Is(err, sqldb.ErrTapLagged) {
				conn.Write(encodeMsg(msgErr, []byte(err.Error()))) //cryptdb:vet-ok durabilityerr: best-effort lag notice before disconnecting
			}
			conn.Close() //cryptdb:vet-ok durabilityerr: follower socket; replication resumes from the follower's own WAL position
			<-ackDone
			return
		}
		if !p.sendFrames(fc, blob) {
			conn.Close() //cryptdb:vet-ok durabilityerr: follower socket; replication resumes from the follower's own WAL position
			<-ackDone
			return
		}
	}
}

// sendFrames ships a blob of tap frames, batched into one message when no
// injector is installed and frame-by-frame (one message per frame, so the
// injector sees every frame boundary) when one is. Reports whether the
// connection is still usable.
func (p *Primary) sendFrames(fc *followerConn, blob []byte) bool {
	inj := p.injector()
	if inj == nil {
		last, err := lastFrameSeq(blob)
		if err != nil {
			return false
		}
		if _, err := fc.conn.Write(encodeMsg(msgFrames, blob)); err != nil {
			return false
		}
		atomic.StoreUint64(&fc.sent, last)
		return true
	}
	frames, err := sqldb.SplitFrames(blob)
	if err != nil {
		return false
	}
	for _, frame := range frames {
		seq, err := sqldb.FrameSeq(frame)
		if err != nil {
			return false
		}
		if !p.sendMsg(fc, msgFrames, frame, seq) {
			return false
		}
	}
	return true
}

// sendMsg writes one message, consulting the fault injector. Reports
// whether the connection survived.
func (p *Primary) sendMsg(fc *followerConn, typ byte, payload []byte, seq uint64) bool {
	wire := encodeMsg(typ, payload)
	if inj := p.injector(); inj != nil {
		var d FaultDecision
		if typ == msgSnap {
			d = inj.OnSnapshot(fc.shard, seq, len(wire))
		} else {
			d = inj.OnFrame(fc.shard, seq, len(wire))
		}
		switch d.Action {
		case DropConn:
			fc.conn.Close() //cryptdb:vet-ok durabilityerr: injected fault; tearing the socket IS the test
			return false
		case Truncate:
			cut := d.Arg
			if cut > len(wire) {
				cut = len(wire)
			}
			fc.conn.Write(wire[:cut]) //cryptdb:vet-ok durabilityerr: injected tear; the partial write IS the fault under test
			fc.conn.Close() //cryptdb:vet-ok durabilityerr: injected fault; tearing the socket IS the test
			return false
		case Delay:
			time.Sleep(time.Duration(d.Arg) * time.Millisecond)
		}
	}
	if _, err := fc.conn.Write(wire); err != nil {
		return false
	}
	atomic.StoreUint64(&fc.sent, seq)
	return true
}

// lastFrameSeq returns the sequence number of the final frame in a blob.
func lastFrameSeq(blob []byte) (uint64, error) {
	frames, err := sqldb.SplitFrames(blob)
	if err != nil || len(frames) == 0 {
		return 0, fmt.Errorf("repl: empty or malformed frame blob: %v", err)
	}
	return sqldb.FrameSeq(frames[len(frames)-1])
}
