package repl_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/sqldb"
)

// BenchmarkReplicationThroughput measures the primary's write throughput
// with and without a live follower tailing the stream, plus the end-to-end
// replicated rate (every row durable AND applied on the follower before
// the clock stops). The with-follower arm quantifies the cost of shipping:
// asynchronous replication should leave the commit path nearly untouched.
func BenchmarkReplicationThroughput(b *testing.B) {
	for _, arm := range []string{"primary-only", "with-follower", "replicated-e2e"} {
		b.Run(arm, func(b *testing.B) {
			prim, err := sqldb.Open(b.TempDir(), dopts)
			if err != nil {
				b.Fatal(err)
			}
			defer prim.Close()
			if _, err := prim.ExecSQL("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
				b.Fatal(err)
			}

			var fw *repl.Follower
			if arm != "primary-only" {
				p, err := repl.NewPrimary([]*sqldb.DB{prim}, "127.0.0.1:0", 0)
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				fol, err := sqldb.Open(b.TempDir(), dopts)
				if err != nil {
					b.Fatal(err)
				}
				defer fol.Close()
				fw = repl.StartFollower(fol, p.Addr(), 0)
				defer fw.Close()
				if err := fw.WaitCaughtUp(prim.Seq(), 10*time.Second); err != nil {
					b.Fatal(err)
				}
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prim.ExecSQL("INSERT INTO t (id, v) VALUES (?, ?)",
					sqldb.Int(int64(i)), sqldb.Int(int64(i*7))); err != nil {
					b.Fatal(err)
				}
			}
			if arm == "replicated-e2e" {
				if err := fw.WaitCaughtUp(prim.Seq(), 60*time.Second); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
			if fw != nil {
				if err := fw.WaitCaughtUp(prim.Seq(), 60*time.Second); err != nil {
					b.Fatal(fmt.Errorf("post-bench catch-up: %w", err))
				}
			}
		})
	}
}
