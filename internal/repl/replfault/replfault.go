// Package replfault is a deterministic fault-injection harness for the
// replication stream. A Script is an ordered list of steps keyed by the
// global count of messages the primary has attempted to send (frames and
// snapshots both count); when the count reaches a step's boundary the
// scripted fault fires — drop the connection, truncate the wire message at
// an exact byte offset (tearing the stream mid-frame), or delay. Because
// the primary sends one message per frame while an injector is installed,
// a boundary identifies a frame (= cohort) boundary exactly, and the same
// script against the same workload reproduces the same failure byte for
// byte.
//
// Scripts also log every decision (Journal), so a failing property-test
// seed prints the precise schedule that broke replication.
package replfault

import (
	"fmt"
	"sync"

	"repro/internal/repl"
)

// Step is one scripted fault. It fires when the primary's cumulative
// attempted-message count (1-based) equals AtMessage and, if Shard >= 0,
// the message belongs to that shard.
type Step struct {
	AtMessage int         // which send attempt triggers the fault (1-based)
	Shard     int         // restrict to one shard; -1 matches any
	Action    repl.FaultAction
	Arg       int // Truncate: bytes of the wire message to send; Delay: milliseconds
}

// Script is a deterministic repl.FaultInjector driven by a fixed step
// list. Steps fire at most once; messages matching no step pass.
type Script struct {
	mu      sync.Mutex
	steps   []Step
	count   int
	journal []string
}

// NewScript builds a script from steps (in any order; matching is by
// AtMessage, not list position).
func NewScript(steps ...Step) *Script {
	return &Script{steps: steps}
}

// OnFrame implements repl.FaultInjector.
func (s *Script) OnFrame(shard int, seq uint64, wireLen int) repl.FaultDecision {
	return s.decide("frame", shard, seq, wireLen)
}

// OnSnapshot implements repl.FaultInjector.
func (s *Script) OnSnapshot(shard int, seq uint64, wireLen int) repl.FaultDecision {
	return s.decide("snapshot", shard, seq, wireLen)
}

func (s *Script) decide(kind string, shard int, seq uint64, wireLen int) repl.FaultDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	for i := range s.steps {
		st := &s.steps[i]
		if st.AtMessage != s.count || (st.Shard >= 0 && st.Shard != shard) {
			continue
		}
		d := repl.FaultDecision{Action: st.Action, Arg: st.Arg}
		// Truncation offsets may be scripted relative to the frame size
		// (negative Arg = wireLen + Arg), so a schedule can say "cut one
		// byte short" without knowing the frame's length up front.
		if d.Action == repl.Truncate && d.Arg < 0 {
			d.Arg = wireLen + d.Arg
			if d.Arg < 0 {
				d.Arg = 0
			}
		}
		s.journal = append(s.journal, fmt.Sprintf("msg %d (%s shard %d seq %d, %dB): action %d arg %d",
			s.count, kind, shard, seq, wireLen, d.Action, d.Arg))
		return d
	}
	return repl.FaultDecision{Action: repl.Pass}
}

// Messages returns how many send attempts the script has observed.
func (s *Script) Messages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Journal returns a human-readable log of every fault that fired.
func (s *Script) Journal() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.journal...)
}
