package rnd

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustIV(t *testing.T) []byte {
	t.Helper()
	iv, err := NewIV()
	if err != nil {
		t.Fatal(err)
	}
	return iv
}

func TestBytesRoundTrip(t *testing.T) {
	key := []byte("key")
	iv := mustIV(t)
	f := func(pt []byte) bool {
		ct, err := Bytes(key, iv, pt)
		if err != nil {
			return false
		}
		got, err := DecryptBytes(key, iv, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesProbabilistic(t *testing.T) {
	// Same plaintext under two fresh IVs must produce different
	// ciphertexts — the core RND security property.
	key := []byte("key")
	pt := []byte("secret value")
	ct1, err := Bytes(key, mustIV(t), pt)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := Bytes(key, mustIV(t), pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("equal ciphertexts under fresh IVs")
	}
}

func TestBytesEmptyPlaintext(t *testing.T) {
	key, iv := []byte("key"), mustIV(t)
	ct, err := Bytes(key, iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptBytes(key, iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %q, want empty", got)
	}
}

func TestBytesBadIV(t *testing.T) {
	if _, err := Bytes([]byte("k"), []byte("short"), []byte("x")); err == nil {
		t.Fatal("want error for short IV")
	}
	if _, err := DecryptBytes([]byte("k"), []byte("short"), make([]byte, 16)); err == nil {
		t.Fatal("want error for short IV on decrypt")
	}
}

func TestDecryptBytesBadLength(t *testing.T) {
	iv := mustIV(t)
	if _, err := DecryptBytes([]byte("k"), iv, []byte("not-a-block")); err == nil {
		t.Fatal("want error for non-block-aligned ciphertext")
	}
	if _, err := DecryptBytes([]byte("k"), iv, nil); err == nil {
		t.Fatal("want error for empty ciphertext")
	}
}

func TestDecryptBytesWrongKey(t *testing.T) {
	iv := mustIV(t)
	ct, err := Bytes([]byte("k1"), iv, []byte("hello world, longer than a block...."))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptBytes([]byte("k2"), iv, ct)
	if err == nil && bytes.Equal(got, []byte("hello world, longer than a block....")) {
		t.Fatal("wrong key decrypted to the plaintext")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	key := []byte("key")
	iv := mustIV(t)
	f := func(v uint64) bool {
		ct, err := Uint64(key, iv, v)
		if err != nil {
			return false
		}
		got, err := DecryptUint64(key, iv, ct)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Probabilistic(t *testing.T) {
	key := []byte("key")
	ct1, err := Uint64(key, mustIV(t), 12345)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := Uint64(key, mustIV(t), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if ct1 == ct2 {
		t.Fatal("equal integer ciphertexts under fresh IVs")
	}
}

func TestUint64CiphertextIs64Bits(t *testing.T) {
	// The whole point of the 64-bit PRP (Blowfish in the paper) is that
	// integer RND ciphertexts stay 8 bytes; the API returning uint64
	// makes that structural, so just confirm the IV requirement.
	if _, err := Uint64([]byte("k"), []byte{1, 2}, 7); err == nil {
		t.Fatal("want error for short IV")
	}
}

func TestNewIVFresh(t *testing.T) {
	a, err := NewIV()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIV()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two fresh IVs identical")
	}
	if len(a) != IVSize {
		t.Fatalf("IV length %d, want %d", len(a), IVSize)
	}
}
