// Package rnd implements CryptDB's RND encryption layer (§3.1): an IND-CPA
// probabilistic scheme under which no computation is possible. Byte strings
// use AES-256-CBC with a random IV; 64-bit integers use the 64-bit-block PRP
// from package feistel in single-block CBC mode (the paper uses Blowfish for
// the same reason: to keep integer ciphertexts 64 bits).
//
// The IV is stored alongside the ciphertext in a separate column at the DBMS
// (the C*-IV columns of Figure 3) and is shared by the RND layers of the Eq
// and Ord onions of a data item.
package rnd

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/crypto/feistel"
	"repro/internal/crypto/prf"
)

// IVSize is the byte length of the per-row initialization vector.
const IVSize = aes.BlockSize

// NewIV draws a fresh random IV.
func NewIV() ([]byte, error) {
	iv := make([]byte, IVSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("rnd: generating IV: %w", err)
	}
	return iv, nil
}

// Bytes encrypts arbitrary data under key with the given IV using
// AES-256-CBC with PKCS#7-style padding. The same (key, iv, pt) triple
// always yields the same ciphertext; probabilistic security comes from
// drawing a fresh IV per row.
func Bytes(key, iv, pt []byte) ([]byte, error) {
	if len(iv) != IVSize {
		return nil, fmt.Errorf("rnd: IV must be %d bytes, got %d", IVSize, len(iv))
	}
	block, err := aes.NewCipher(prf.Sum(key, []byte("rnd-aes")))
	if err != nil {
		return nil, fmt.Errorf("rnd: %w", err)
	}
	padded := pad(pt, aes.BlockSize)
	ct := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(ct, padded)
	return ct, nil
}

// DecryptBytes inverts Bytes.
func DecryptBytes(key, iv, ct []byte) ([]byte, error) {
	if len(iv) != IVSize {
		return nil, fmt.Errorf("rnd: IV must be %d bytes, got %d", IVSize, len(iv))
	}
	if len(ct) == 0 || len(ct)%aes.BlockSize != 0 {
		return nil, fmt.Errorf("rnd: ciphertext length %d not a positive multiple of %d", len(ct), aes.BlockSize)
	}
	block, err := aes.NewCipher(prf.Sum(key, []byte("rnd-aes")))
	if err != nil {
		return nil, fmt.Errorf("rnd: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(pt, ct)
	return unpad(pt, aes.BlockSize)
}

// Uint64 encrypts a 64-bit integer as a single 64-bit block: one round of
// CBC with the 64-bit PRP, ct = E(pt XOR iv64). iv64 is derived from the
// row IV so that integer and string columns can share the stored IV.
func Uint64(key, iv []byte, pt uint64) (uint64, error) {
	if len(iv) != IVSize {
		return 0, fmt.Errorf("rnd: IV must be %d bytes, got %d", IVSize, len(iv))
	}
	c := feistel.New(prf.Sum(key, []byte("rnd-int")))
	return c.Encrypt(pt ^ binary.BigEndian.Uint64(iv[:8])), nil
}

// DecryptUint64 inverts Uint64.
func DecryptUint64(key, iv []byte, ct uint64) (uint64, error) {
	if len(iv) != IVSize {
		return 0, fmt.Errorf("rnd: IV must be %d bytes, got %d", IVSize, len(iv))
	}
	c := feistel.New(prf.Sum(key, []byte("rnd-int")))
	return c.Decrypt(ct) ^ binary.BigEndian.Uint64(iv[:8]), nil
}

func pad(pt []byte, size int) []byte {
	n := size - len(pt)%size
	return append(append([]byte{}, pt...), bytes.Repeat([]byte{byte(n)}, n)...)
}

func unpad(pt []byte, size int) ([]byte, error) {
	if len(pt) == 0 {
		return nil, errors.New("rnd: empty plaintext after decryption")
	}
	n := int(pt[len(pt)-1])
	if n == 0 || n > size || n > len(pt) {
		return nil, errors.New("rnd: bad padding")
	}
	for _, b := range pt[len(pt)-n:] {
		if int(b) != n {
			return nil, errors.New("rnd: bad padding")
		}
	}
	return pt[:len(pt)-n], nil
}
