// Package cmc implements the deterministic wide-block mode CryptDB uses for
// DET over values longer than one AES block (§3.1). Plain CBC with a zero IV
// would leak prefix equality (two plaintexts sharing a ≥128-bit prefix
// produce ciphertexts sharing a prefix). The paper describes its CMC variant
// as "approximately ... one round of CBC, followed by another round of CBC
// with the blocks in the reverse order"; this package implements exactly
// that construction with two independently derived AES keys and a zero
// tweak, so every ciphertext block depends on every plaintext block.
package cmc

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"

	"repro/internal/crypto/prf"
)

// Cipher is a deterministic wide-block cipher. It is safe for concurrent use.
type Cipher struct {
	fwd, bwd cipher.Block
}

// New derives a Cipher from arbitrary key material.
func New(key []byte) *Cipher {
	fwd, err := aes.NewCipher(prf.Sum(key, []byte("cmc-fwd")))
	if err != nil {
		panic("cmc: aes.NewCipher: " + err.Error()) // impossible: fixed key size
	}
	bwd, err := aes.NewCipher(prf.Sum(key, []byte("cmc-bwd")))
	if err != nil {
		panic("cmc: aes.NewCipher: " + err.Error())
	}
	return &Cipher{fwd: fwd, bwd: bwd}
}

// Encrypt deterministically encrypts pt. The output length is len(pt)
// rounded up to the next multiple of 16 (plus one block when pt is already
// aligned, for unambiguous padding).
func (c *Cipher) Encrypt(pt []byte) []byte {
	buf := pad(pt, aes.BlockSize)
	// Forward CBC pass with zero IV.
	cbcPass(c.fwd, buf)
	// Reverse the block order, then a second CBC pass. After this, the
	// first output block depends on the last input block and vice versa,
	// destroying any shared-prefix structure.
	reverseBlocks(buf)
	cbcPass(c.bwd, buf)
	return buf
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(ct []byte) ([]byte, error) {
	if len(ct) == 0 || len(ct)%aes.BlockSize != 0 {
		return nil, fmt.Errorf("cmc: ciphertext length %d not a positive multiple of %d", len(ct), aes.BlockSize)
	}
	buf := append([]byte{}, ct...)
	cbcUnpass(c.bwd, buf)
	reverseBlocks(buf)
	cbcUnpass(c.fwd, buf)
	return unpad(buf, aes.BlockSize)
}

// cbcPass encrypts buf in place with CBC and a zero IV.
func cbcPass(b cipher.Block, buf []byte) {
	var iv [aes.BlockSize]byte
	cipher.NewCBCEncrypter(b, iv[:]).CryptBlocks(buf, buf)
}

// cbcUnpass decrypts buf in place with CBC and a zero IV.
func cbcUnpass(b cipher.Block, buf []byte) {
	var iv [aes.BlockSize]byte
	cipher.NewCBCDecrypter(b, iv[:]).CryptBlocks(buf, buf)
}

func reverseBlocks(buf []byte) {
	n := len(buf) / aes.BlockSize
	var tmp [aes.BlockSize]byte
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		bi := buf[i*aes.BlockSize : (i+1)*aes.BlockSize]
		bj := buf[j*aes.BlockSize : (j+1)*aes.BlockSize]
		copy(tmp[:], bi)
		copy(bi, bj)
		copy(bj, tmp[:])
	}
}

func pad(pt []byte, size int) []byte {
	n := size - len(pt)%size
	return append(append([]byte{}, pt...), bytes.Repeat([]byte{byte(n)}, n)...)
}

func unpad(pt []byte, size int) ([]byte, error) {
	if len(pt) == 0 {
		return nil, errors.New("cmc: empty plaintext")
	}
	n := int(pt[len(pt)-1])
	if n == 0 || n > size || n > len(pt) {
		return nil, errors.New("cmc: bad padding")
	}
	for _, b := range pt[len(pt)-n:] {
		if int(b) != n {
			return nil, errors.New("cmc: bad padding")
		}
	}
	return pt[:len(pt)-n], nil
}
