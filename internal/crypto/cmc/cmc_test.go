package cmc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	c := New([]byte("key"))
	f := func(pt []byte) bool {
		got, err := c.Decrypt(c.Encrypt(pt))
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	c := New([]byte("key"))
	pt := []byte("the same plaintext")
	if !bytes.Equal(c.Encrypt(pt), c.Encrypt(pt)) {
		t.Fatal("CMC must be deterministic (it backs the DET layer)")
	}
}

func TestKeySeparation(t *testing.T) {
	pt := []byte("payload")
	if bytes.Equal(New([]byte("k1")).Encrypt(pt), New([]byte("k2")).Encrypt(pt)) {
		t.Fatal("different keys produced identical ciphertexts")
	}
}

func TestNoPrefixLeak(t *testing.T) {
	// Two plaintexts sharing a 32-byte prefix: under plain zero-IV CBC
	// the first two ciphertext blocks would match; CMC must not leak
	// this (§3.1's motivation for the CMC variant).
	c := New([]byte("key"))
	prefix := bytes.Repeat([]byte("A"), 32)
	p1 := append(append([]byte{}, prefix...), []byte("suffix-one")...)
	p2 := append(append([]byte{}, prefix...), []byte("suffix-TWO")...)
	c1 := c.Encrypt(p1)
	c2 := c.Encrypt(p2)
	if bytes.Equal(c1[:16], c2[:16]) {
		t.Fatal("first ciphertext blocks equal: prefix equality leaked")
	}
	if bytes.Equal(c1[16:32], c2[16:32]) {
		t.Fatal("second ciphertext blocks equal: prefix equality leaked")
	}
}

func TestNoSuffixLeak(t *testing.T) {
	c := New([]byte("key"))
	suffix := bytes.Repeat([]byte("Z"), 32)
	p1 := append([]byte("one-"), suffix...)
	p2 := append([]byte("TWO-"), suffix...)
	c1 := c.Encrypt(p1)
	c2 := c.Encrypt(p2)
	if bytes.Equal(c1[len(c1)-16:], c2[len(c2)-16:]) {
		t.Fatal("last ciphertext blocks equal: suffix equality leaked")
	}
}

func TestDecryptBadLength(t *testing.T) {
	c := New([]byte("key"))
	if _, err := c.Decrypt([]byte("tiny")); err == nil {
		t.Fatal("want error for misaligned ciphertext")
	}
	if _, err := c.Decrypt(nil); err == nil {
		t.Fatal("want error for empty ciphertext")
	}
}

func TestDecryptCorrupted(t *testing.T) {
	c := New([]byte("key"))
	ct := c.Encrypt([]byte("hello"))
	ct[0] ^= 0xff
	if got, err := c.Decrypt(ct); err == nil && bytes.Equal(got, []byte("hello")) {
		t.Fatal("corrupted ciphertext decrypted to original plaintext")
	}
}

func TestEmptyPlaintext(t *testing.T) {
	c := New([]byte("key"))
	got, err := c.Decrypt(c.Encrypt(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %q, want empty", got)
	}
}

func TestCiphertextLength(t *testing.T) {
	c := New([]byte("key"))
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 100} {
		ct := c.Encrypt(make([]byte, n))
		want := (n/16 + 1) * 16
		if len(ct) != want {
			t.Fatalf("len(Encrypt(%d bytes)) = %d, want %d", n, len(ct), want)
		}
	}
}
