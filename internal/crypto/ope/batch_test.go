package ope

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestEncryptBatchMatchesSingle(t *testing.T) {
	single := New([]byte("key"))
	batch := New([]byte("key"))
	rng := rand.New(rand.NewSource(4))
	ms := make([]uint64, 40)
	for i := range ms {
		ms[i] = uint64(rng.Uint32())
	}
	got, err := batch.EncryptBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		want, err := single.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("batch[%d] = %d, single = %d", i, got[i], want)
		}
	}
}

func TestEncryptBatchPreservesInputOrder(t *testing.T) {
	c := New([]byte("key"))
	ms := []uint64{500, 1, 300, 2}
	cts, err := c.EncryptBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	// Order preservation holds pairwise on the original positions.
	if !(cts[1] < cts[3] && cts[3] < cts[2] && cts[2] < cts[0]) {
		t.Fatalf("order violated: %v -> %v", ms, cts)
	}
}

func TestEncryptBatchEmpty(t *testing.T) {
	c := New([]byte("key"))
	out, err := c.EncryptBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestDecryptBatchRoundTrip(t *testing.T) {
	c := New([]byte("key"))
	rng := rand.New(rand.NewSource(11))
	ms := make([]uint64, 50)
	for i := range ms {
		ms[i] = uint64(rng.Uint32())
	}
	cts, err := c.EncryptBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	// Decrypt through a fresh cipher so the batch cannot lean on state left
	// behind by encryption.
	got, err := New([]byte("key")).DecryptBatch(cts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if got[i] != ms[i] {
			t.Fatalf("roundtrip[%d] = %d, want %d", i, got[i], ms[i])
		}
	}
}

func TestDecryptBatchPreservesInputOrder(t *testing.T) {
	c := New([]byte("key"))
	ms := []uint64{900, 3, 512, 77}
	cts, err := c.EncryptBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []uint64{cts[2], cts[0], cts[3], cts[1]}
	got, err := c.DecryptBatch(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{512, 900, 77, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decrypt[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDecryptBatchInvalidCiphertext(t *testing.T) {
	c := New([]byte("key"))
	ct, err := c.Encrypt(42)
	if err != nil {
		t.Fatal(err)
	}
	// Find a range point that is not a valid ciphertext.
	bad := ct
	for {
		bad++
		if _, err := c.Decrypt(bad); err != nil {
			break
		}
	}
	if _, err := c.DecryptBatch([]uint64{ct, bad}); err == nil {
		t.Fatal("want error for invalid ciphertext in batch")
	}
}

func TestDecryptBatchEmpty(t *testing.T) {
	c := New([]byte("key"))
	out, err := c.DecryptBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

// TestEncryptConcurrentSameValues hammers one cipher with goroutines that
// repeatedly encrypt the same small value set; the in-flight consolidation
// must hand every caller the same ciphertexts the serial reference produces
// (run under -race in CI).
func TestEncryptConcurrentSameValues(t *testing.T) {
	c := New([]byte("key"))
	ref := New([]byte("key"))
	vals := []uint64{7, 99, 12345, 1 << 30, 42}
	want := make([]uint64, len(vals))
	for i, m := range vals {
		ct, err := ref.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ct
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := (g + i) % len(vals)
				ct, err := c.Encrypt(vals[k])
				if err != nil {
					errs <- err
					return
				}
				if ct != want[k] {
					errs <- fmt.Errorf("Encrypt(%d) = %d, want %d", vals[k], ct, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEncryptConcurrentWithDisableCache races DisableCache against
// encryptors; results must stay correct throughout.
func TestEncryptConcurrentWithDisableCache(t *testing.T) {
	c := New([]byte("key"))
	want, err := New([]byte("key")).Encrypt(4242)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ct, err := c.Encrypt(4242)
				if err != nil {
					errs <- err
					return
				}
				if ct != want {
					errs <- fmt.Errorf("Encrypt(4242) = %d, want %d", ct, want)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.DisableCache()
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkBatchVsUnsorted(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ms := make([]uint64, 200)
	for i := range ms {
		ms[i] = uint64(rng.Uint32())
	}
	b.Run("batch-sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := New([]byte{byte(i), byte(i >> 8)})
			if _, err := c.EncryptBatch(ms); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := New([]byte{byte(i), byte(i >> 8)})
			for _, m := range ms {
				if _, err := c.Encrypt(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
