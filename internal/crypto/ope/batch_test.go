package ope

import (
	"math/rand"
	"testing"
)

func TestEncryptBatchMatchesSingle(t *testing.T) {
	single := New([]byte("key"))
	batch := New([]byte("key"))
	rng := rand.New(rand.NewSource(4))
	ms := make([]uint64, 40)
	for i := range ms {
		ms[i] = uint64(rng.Uint32())
	}
	got, err := batch.EncryptBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		want, err := single.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("batch[%d] = %d, single = %d", i, got[i], want)
		}
	}
}

func TestEncryptBatchPreservesInputOrder(t *testing.T) {
	c := New([]byte("key"))
	ms := []uint64{500, 1, 300, 2}
	cts, err := c.EncryptBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	// Order preservation holds pairwise on the original positions.
	if !(cts[1] < cts[3] && cts[3] < cts[2] && cts[2] < cts[0]) {
		t.Fatalf("order violated: %v -> %v", ms, cts)
	}
}

func TestEncryptBatchEmpty(t *testing.T) {
	c := New([]byte("key"))
	out, err := c.EncryptBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func BenchmarkBatchVsUnsorted(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ms := make([]uint64, 200)
	for i := range ms {
		ms[i] = uint64(rng.Uint32())
	}
	b.Run("batch-sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := New([]byte{byte(i), byte(i >> 8)})
			if _, err := c.EncryptBatch(ms); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := New([]byte{byte(i), byte(i >> 8)})
			for _, m := range ms {
				if _, err := c.Encrypt(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
