package ope

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrderPreserved(t *testing.T) {
	c := New([]byte("key"))
	f := func(aRaw, bRaw uint32) bool {
		a, b := uint64(aRaw), uint64(bRaw)
		ca, err := c.Encrypt(a)
		if err != nil {
			return false
		}
		cb, err := c.Encrypt(b)
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return ca < cb
		case a > b:
			return ca > cb
		default:
			return ca == cb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderPreservedSorted(t *testing.T) {
	c := New([]byte("key"))
	rng := rand.New(rand.NewSource(1))
	pts := make([]uint64, 200)
	for i := range pts {
		pts[i] = uint64(rng.Uint32())
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	var prev uint64
	for i, p := range pts {
		ct, err := c.Encrypt(p)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && pts[i-1] < p && ct <= prev {
			t.Fatalf("order violated at %d: Enc(%d)=%d <= Enc(%d)=%d", i, p, ct, pts[i-1], prev)
		}
		prev = ct
	}
}

func TestRoundTrip(t *testing.T) {
	c := New([]byte("key"))
	for _, m := range []uint64{0, 1, 2, 1000, 1 << 20, 1<<32 - 1} {
		ct, err := c.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt(Enc(%d)): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %d -> %d", m, got)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	c := New([]byte("key"))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		m := uint64(rng.Uint32())
		ct, err := c.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decrypt(ct)
		if err != nil || got != m {
			t.Fatalf("round trip %d -> %d (%v)", m, got, err)
		}
	}
}

func TestDeterministic(t *testing.T) {
	c1 := New([]byte("key"))
	c2 := New([]byte("key"))
	for _, m := range []uint64{5, 99999, 1 << 31} {
		a, _ := c1.Encrypt(m)
		b, _ := c2.Encrypt(m)
		if a != b {
			t.Fatalf("two ciphers with the same key disagree on %d: %d vs %d", m, a, b)
		}
	}
}

func TestKeySeparation(t *testing.T) {
	c1 := New([]byte("key1"))
	c2 := New([]byte("key2"))
	same := 0
	for m := uint64(0); m < 32; m++ {
		a, _ := c1.Encrypt(m)
		b, _ := c2.Encrypt(m)
		if a == b {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/32 ciphertexts identical across keys", same)
	}
}

func TestCacheConsistency(t *testing.T) {
	// With and without the node cache, the mapping must be identical —
	// the cache is a pure performance optimization (§3.1).
	withCache := New([]byte("key"))
	noCache := New([]byte("key"))
	noCache.DisableCache()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		m := uint64(rng.Uint32())
		a, err := withCache.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := noCache.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("cache changed ciphertext of %d: %d vs %d", m, a, b)
		}
	}
}

func TestDomainBoundsError(t *testing.T) {
	c, err := NewWithBits([]byte("key"), 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encrypt(1 << 16); err == nil {
		t.Fatal("want error for plaintext outside the domain")
	}
}

func TestInvalidCiphertext(t *testing.T) {
	c, err := NewWithBits([]byte("key"), 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Collect all valid ciphertexts for the 256-point domain, then
	// probe values not in the image.
	valid := map[uint64]bool{}
	for m := uint64(0); m < 256; m++ {
		ct, err := c.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		valid[ct] = true
	}
	probes := 0
	for ct := uint64(0); ct < 1<<20 && probes < 50; ct += 9973 {
		if valid[ct] {
			continue
		}
		probes++
		if _, err := c.Decrypt(ct); err == nil {
			t.Fatalf("Decrypt accepted non-image ciphertext %d", ct)
		}
	}
}

func TestSmallDomainExhaustive(t *testing.T) {
	c, err := NewWithBits([]byte("key"), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for m := uint64(0); m < 256; m++ {
		ct, err := c.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		if m > 0 && ct <= prev {
			t.Fatalf("order violated: Enc(%d)=%d <= Enc(%d)=%d", m, ct, m-1, prev)
		}
		prev = ct
		got, err := c.Decrypt(ct)
		if err != nil || got != m {
			t.Fatalf("round trip %d -> %d (%v)", m, got, err)
		}
	}
}

func TestNewWithBitsValidation(t *testing.T) {
	for _, tc := range [][2]uint{{0, 10}, {10, 10}, {12, 10}, {32, 65}} {
		if _, err := NewWithBits([]byte("k"), tc[0], tc[1]); err == nil {
			t.Fatalf("NewWithBits(%d, %d) should fail", tc[0], tc[1])
		}
	}
}

func TestRangeBoundsOnDecrypt(t *testing.T) {
	c, err := NewWithBits([]byte("key"), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decrypt(1 << 20); err == nil {
		t.Fatal("want error for ciphertext outside the range")
	}
}
