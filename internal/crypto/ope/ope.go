// Package ope implements the Boldyreva et al. order-preserving encryption
// scheme used by CryptDB's OPE layer (§3.1): if x < y then Enc(x) < Enc(y),
// so the DBMS server can evaluate range predicates, ORDER BY, MIN, MAX and
// SORT directly on ciphertexts. The scheme is equivalent to a random
// order-preserving mapping from the plaintext domain into a larger
// ciphertext range.
//
// The construction recursively bisects the ciphertext range: at each node a
// hypergeometric draw (package hgd) decides how many of the domain points in
// the current interval map below the range midpoint, and deterministic
// coins (keyed AES-CTR) make the whole mapping a function of the key alone.
//
// The paper reports that a direct implementation cost 25 ms per 32-bit
// encryption, reduced to 7 ms by caching search-tree state across calls
// ("AVL binary search trees for batch encryption", §3.1). This package
// implements the analogous optimization: an internal cache memoizes the
// hypergeometric split at every visited (domain, range) node, so repeated
// encryptions share all common path prefixes. Disable it with DisableCache
// for the ablation benchmark.
package ope

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/crypto/hgd"
	"repro/internal/crypto/prf"
)

// Cipher order-preservingly encrypts integers from [0, 2^DomainBits) into
// [0, 2^RangeBits). It is safe for concurrent use.
type Cipher struct {
	key        []byte
	domainBits uint
	rangeBits  uint

	mu        sync.Mutex
	nodeCache map[nodeKey]uint64 // (domain, range) interval -> split point x
	leafCache map[uint64]uint64  // plaintext -> ciphertext
	inflight  map[uint64]*inflightEnc
	useCache  bool
}

// inflightEnc coordinates concurrent Encrypt calls for the same plaintext:
// the first caller computes, later callers wait for its result instead of
// redundantly recomputing the full HGD walk.
type inflightEnc struct {
	done chan struct{}
	ct   uint64
}

type nodeKey struct {
	dlo, dhi, rlo, rhi uint64
}

// DefaultDomainBits and DefaultRangeBits match the paper's headline numbers:
// 32-bit plaintexts, 64-bit ciphertexts.
const (
	DefaultDomainBits = 32
	DefaultRangeBits  = 64
)

// New builds a Cipher over the default 32-bit domain / 64-bit range.
func New(key []byte) *Cipher {
	c, err := NewWithBits(key, DefaultDomainBits, DefaultRangeBits)
	if err != nil {
		panic("ope: " + err.Error()) // impossible with default parameters
	}
	return c
}

// NewWithBits builds a Cipher with explicit domain and range sizes.
// rangeBits must exceed domainBits (the range must be strictly larger than
// the domain for the hypergeometric recursion to be well defined) and at
// most 64.
func NewWithBits(key []byte, domainBits, rangeBits uint) (*Cipher, error) {
	if domainBits == 0 || domainBits >= rangeBits || rangeBits > 64 {
		return nil, fmt.Errorf("ope: invalid sizes: domain 2^%d, range 2^%d", domainBits, rangeBits)
	}
	return &Cipher{
		key:        prf.Sum(key, []byte("ope")),
		domainBits: domainBits,
		rangeBits:  rangeBits,
		nodeCache:  make(map[nodeKey]uint64),
		leafCache:  make(map[uint64]uint64),
		inflight:   make(map[uint64]*inflightEnc),
		useCache:   true,
	}, nil
}

// DisableCache turns off node memoization (for the ablation benchmark that
// reproduces the paper's 25 ms -> 7 ms improvement).
func (c *Cipher) DisableCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.useCache = false
	c.nodeCache = make(map[nodeKey]uint64)
	c.leafCache = make(map[uint64]uint64)
	c.inflight = make(map[uint64]*inflightEnc)
}

// domainMax returns the largest encryptable plaintext.
func (c *Cipher) domainMax() uint64 {
	if c.domainBits == 64 {
		return ^uint64(0)
	}
	return 1<<c.domainBits - 1
}

func (c *Cipher) rangeMax() uint64 {
	if c.rangeBits == 64 {
		return ^uint64(0)
	}
	return 1<<c.rangeBits - 1
}

// Encrypt maps m to its order-preserving ciphertext.
//
// Concurrent calls for the same plaintext are coalesced: the first caller
// performs the HGD walk while the rest wait on its result, so bulk loads
// fanned across goroutines never duplicate tree work.
func (c *Cipher) Encrypt(m uint64) (uint64, error) {
	if m > c.domainMax() {
		return 0, fmt.Errorf("ope: plaintext %d outside domain [0, 2^%d)", m, c.domainBits)
	}
	c.mu.Lock()
	if !c.useCache {
		c.mu.Unlock()
		return c.walk(m, 0, c.domainMax(), 0, c.rangeMax(), nil), nil
	}
	if ct, ok := c.leafCache[m]; ok {
		c.mu.Unlock()
		return ct, nil
	}
	if fl, ok := c.inflight[m]; ok {
		c.mu.Unlock()
		<-fl.done
		return fl.ct, nil
	}
	fl := &inflightEnc{done: make(chan struct{})}
	c.inflight[m] = fl
	c.mu.Unlock()

	ct := c.walk(m, 0, c.domainMax(), 0, c.rangeMax(), nil)

	c.mu.Lock()
	// DisableCache may have swapped the maps mid-walk; these writes then
	// land on dead maps, which is harmless.
	c.leafCache[m] = ct
	delete(c.inflight, m)
	c.mu.Unlock()
	fl.ct = ct
	close(fl.done)
	return ct, nil
}

// EncryptBatch encrypts many plaintexts at once, visiting them in sorted
// order so consecutive values share the longest possible tree-path
// prefixes in the node cache — the paper's "AVL binary search trees for
// batch encryption (e.g., database loads)" optimization (§3.1). Results
// are returned in the order of the input slice.
func (c *Cipher) EncryptBatch(ms []uint64) ([]uint64, error) {
	idx := make([]int, len(ms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ms[idx[a]] < ms[idx[b]] })
	out := make([]uint64, len(ms))
	for _, i := range idx {
		ct, err := c.Encrypt(ms[i])
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// DecryptBatch decrypts many ciphertexts at once, visiting them in sorted
// order so consecutive values share the longest possible tree-path prefixes
// in the node cache — the decryption counterpart of EncryptBatch, for bulk
// consumers (exports, re-encryption sweeps) that hold whole ciphertext
// columns. The proxy's regular result decryption rarely touches OPE (Eq
// reads go through DET; only MIN/MAX results decrypt Ord, one value per
// group), so it decrypts per row instead. Results are returned in the
// order of the input slice; any invalid ciphertext fails the whole batch.
func (c *Cipher) DecryptBatch(cts []uint64) ([]uint64, error) {
	idx := make([]int, len(cts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cts[idx[a]] < cts[idx[b]] })
	out := make([]uint64, len(cts))
	for _, i := range idx {
		m, err := c.Decrypt(cts[i])
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// Decrypt inverts Encrypt. It returns an error if ct is not a ciphertext
// produced under this key.
func (c *Cipher) Decrypt(ct uint64) (uint64, error) {
	if ct > c.rangeMax() {
		return 0, fmt.Errorf("ope: ciphertext %d outside range [0, 2^%d)", ct, c.rangeBits)
	}
	var m uint64
	found := c.walkDecrypt(ct, 0, c.domainMax(), 0, c.rangeMax(), &m)
	if !found {
		return 0, errors.New("ope: not a valid ciphertext under this key")
	}
	return m, nil
}

// walk recursively narrows (domain, range) until the domain is a single
// point, then places m pseudo-randomly inside the remaining range.
func (c *Cipher) walk(m, dlo, dhi, rlo, rhi uint64, _ []byte) uint64 {
	for {
		if dlo == dhi {
			return c.leafValue(dlo, rlo, rhi)
		}
		drawn, y := c.split(dlo, dhi, rlo, rhi)
		// drawn = number of domain points mapped into [rlo, y]; those
		// are exactly the plaintexts dlo .. dlo+drawn-1.
		if m-dlo < drawn {
			dhi, rhi = dlo+drawn-1, y
		} else {
			dlo, rlo = dlo+drawn, y+1
		}
	}
}

func (c *Cipher) walkDecrypt(ct, dlo, dhi, rlo, rhi uint64, out *uint64) bool {
	for {
		if dlo == dhi {
			if c.leafValue(dlo, rlo, rhi) == ct {
				*out = dlo
				return true
			}
			return false
		}
		drawn, y := c.split(dlo, dhi, rlo, rhi)
		if ct <= y {
			// No domain point maps below the midpoint, yet ct lies
			// there: ct is not a valid ciphertext.
			if drawn == 0 {
				return false
			}
			dhi, rhi = dlo+drawn-1, y
		} else {
			// All domain points map below the midpoint.
			if dlo+drawn > dhi {
				return false
			}
			dlo, rlo = dlo+drawn, y+1
		}
	}
}

// split computes, for the interval pair (D=[dlo,dhi], R=[rlo,rhi]), the
// range midpoint y and the number of domain points mapped at or below y.
// All size arithmetic avoids overflow even when R spans the full 64-bit
// space (where N = 2^64 is not representable).
func (c *Cipher) split(dlo, dhi, rlo, rhi uint64) (drawn, y uint64) {
	width := rhi - rlo // N-1; never overflows
	var half uint64    // ceil(N/2)
	if width == ^uint64(0) {
		half = 1 << 63
	} else {
		n := width + 1
		half = n/2 + n%2
	}
	y = rlo + half - 1

	key := nodeKey{dlo, dhi, rlo, rhi}
	c.mu.Lock()
	useCache := c.useCache // snapshot: DisableCache may race with a walk
	if useCache {
		if cached, ok := c.nodeCache[key]; ok {
			c.mu.Unlock()
			return cached, y
		}
	}
	c.mu.Unlock()

	m := dhi - dlo + 1     // domain size (white balls); dhi > dlo here
	black := width - m + 1 // N - m, computed without forming N
	coins := prf.NewStream(c.key, []byte("node"), encode4(dlo, dhi, rlo, rhi))
	drawn = hgd.Sample(half, m, black, coins)

	if useCache {
		c.mu.Lock()
		c.nodeCache[key] = drawn
		c.mu.Unlock()
	}
	return drawn, y
}

// leafValue deterministically places the single remaining domain point d
// uniformly inside [rlo, rhi].
func (c *Cipher) leafValue(d, rlo, rhi uint64) uint64 {
	coins := prf.NewStream(c.key, []byte("leaf"), encode4(d, rlo, rhi, 0))
	if rhi-rlo == ^uint64(0) {
		return coins.Uint64()
	}
	return rlo + coins.Uint64n(rhi-rlo+1)
}

func encode4(a, b, cc, d uint64) []byte {
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:], a)
	binary.BigEndian.PutUint64(buf[8:], b)
	binary.BigEndian.PutUint64(buf[16:], cc)
	binary.BigEndian.PutUint64(buf[24:], d)
	return buf[:]
}
