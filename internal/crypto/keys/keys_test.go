package keys

import (
	"bytes"
	"testing"
)

func TestDeriveDeterministic(t *testing.T) {
	m := MasterFromBytes([]byte("seed"))
	a := m.Derive("t1", "c1", "Eq", "DET")
	b := m.Derive("t1", "c1", "Eq", "DET")
	if !bytes.Equal(a, b) {
		t.Fatal("Derive not deterministic")
	}
	if len(a) != 32 {
		t.Fatalf("key length = %d, want 32", len(a))
	}
}

func TestDeriveSeparation(t *testing.T) {
	m := MasterFromBytes([]byte("seed"))
	base := m.Derive("t1", "c1", "Eq", "DET")
	variants := [][4]string{
		{"t2", "c1", "Eq", "DET"},
		{"t1", "c2", "Eq", "DET"},
		{"t1", "c1", "Ord", "DET"},
		{"t1", "c1", "Eq", "RND"},
	}
	for _, v := range variants {
		k := m.Derive(v[0], v[1], v[2], v[3])
		if bytes.Equal(base, k) {
			t.Fatalf("key for %v collides with base", v)
		}
	}
}

func TestDeriveMasterSeparation(t *testing.T) {
	m1 := MasterFromBytes([]byte("seed1"))
	m2 := MasterFromBytes([]byte("seed2"))
	if bytes.Equal(m1.Derive("t", "c", "Eq", "DET"), m2.Derive("t", "c", "Eq", "DET")) {
		t.Fatal("different masters must derive different keys")
	}
}

func TestNewMasterRandom(t *testing.T) {
	a, err := NewMaster()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMaster()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two fresh masters are identical")
	}
}

func TestDeriveLabel(t *testing.T) {
	m := MasterFromBytes([]byte("seed"))
	if bytes.Equal(m.DeriveLabel("a"), m.DeriveLabel("b")) {
		t.Fatal("labels must separate keys")
	}
	if !bytes.Equal(m.DeriveLabel("a"), m.DeriveLabel("a")) {
		t.Fatal("DeriveLabel not deterministic")
	}
}

func TestBytesIsCopy(t *testing.T) {
	m := MasterFromBytes([]byte("seed"))
	b := m.Bytes()
	b[0] ^= 0xff
	if bytes.Equal(b, m.Bytes()) {
		t.Fatal("Bytes must return a copy")
	}
}
