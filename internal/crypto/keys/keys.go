// Package keys implements CryptDB's key derivation (Equation 1 of the
// paper): every (table, column, onion, layer) gets its own key derived from
// a single master key MK via a pseudo-random function, so the proxy stores
// one secret and the server can never correlate columns.
package keys

import (
	"crypto/rand"
	"fmt"

	"repro/internal/crypto/prf"
)

// Size is the byte length of all derived keys.
const Size = 32

// Master holds the proxy's secret master key MK.
type Master struct {
	mk []byte
}

// NewMaster generates a fresh random master key.
func NewMaster() (*Master, error) {
	mk := make([]byte, Size)
	if _, err := rand.Read(mk); err != nil {
		return nil, fmt.Errorf("keys: generating master key: %w", err)
	}
	return &Master{mk: mk}, nil
}

// MasterFromBytes builds a Master from existing key material (e.g. a
// principal's key in multi-principal mode, where onion keys are derived
// from the principal key rather than a global MK — §4.2).
func MasterFromBytes(b []byte) *Master {
	mk := make([]byte, Size)
	copy(mk, prf.Sum(b, []byte("cryptdb-master")))
	return &Master{mk: mk}
}

// MasterFromRaw rebuilds a Master from the exact bytes Bytes returned: the
// state-restore path. Unlike MasterFromBytes it applies no PRF, so the
// restored Master derives the same column keys as the original.
func MasterFromRaw(b []byte) (*Master, error) {
	if len(b) != Size {
		return nil, fmt.Errorf("keys: master key must be %d bytes, got %d", Size, len(b))
	}
	mk := make([]byte, Size)
	copy(mk, b)
	return &Master{mk: mk}, nil
}

// Derive computes K_{table,column,onion,layer} = PRF_MK(table, column,
// onion, layer). The paper uses a PRP (AES); any PRF with ≥128-bit output is
// an equivalent instantiation.
func (m *Master) Derive(table, column, onion, layer string) []byte {
	return prf.Sum(m.mk,
		[]byte("key"),
		[]byte(table), []byte(column), []byte(onion), []byte(layer))
}

// DeriveLabel derives a key for a free-form purpose not tied to a column,
// such as the shared PRF key K0 inside JOIN-ADJ.
func (m *Master) DeriveLabel(label string) []byte {
	return prf.Sum(m.mk, []byte("label"), []byte(label))
}

// Bytes returns the raw master key. Used only by tests and by the
// multi-principal layer when wrapping keys for storage.
func (m *Master) Bytes() []byte {
	out := make([]byte, len(m.mk))
	copy(out, m.mk)
	return out
}
