package det

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint64RoundTrip(t *testing.T) {
	c := New([]byte("key"))
	f := func(v uint64) bool {
		return c.DecryptUint64(c.Uint64(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	c := New([]byte("key"))
	f := func(pt []byte) bool {
		got, err := c.DecryptBytes(c.Bytes(pt))
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualityPreserved(t *testing.T) {
	// The defining DET property: equal plaintexts, equal ciphertexts.
	c := New([]byte("key"))
	if c.Uint64(77) != c.Uint64(77) {
		t.Fatal("integer DET not deterministic")
	}
	if !bytes.Equal(c.Bytes([]byte("alice")), c.Bytes([]byte("alice"))) {
		t.Fatal("bytes DET not deterministic")
	}
}

func TestInequalityPreserved(t *testing.T) {
	c := New([]byte("key"))
	if c.Uint64(77) == c.Uint64(78) {
		t.Fatal("distinct integers collided")
	}
	if bytes.Equal(c.Bytes([]byte("alice")), c.Bytes([]byte("bob"))) {
		t.Fatal("distinct strings collided")
	}
}

func TestCrossColumnSeparation(t *testing.T) {
	// Different column keys must not produce matching ciphertexts —
	// this is why a separate JOIN scheme is needed for equi-joins (§3.4).
	c1 := New([]byte("table1.colA"))
	c2 := New([]byte("table2.colB"))
	if c1.Uint64(42) == c2.Uint64(42) {
		t.Fatal("cross-column integer ciphertexts matched")
	}
	if bytes.Equal(c1.Bytes([]byte("x")), c2.Bytes([]byte("x"))) {
		t.Fatal("cross-column byte ciphertexts matched")
	}
}

func TestHistogramOnlyLeak(t *testing.T) {
	// Encrypting a column with repeats yields the same histogram shape.
	c := New([]byte("key"))
	in := []string{"a", "b", "a", "c", "b", "a"}
	counts := map[string]int{}
	for _, v := range in {
		counts[string(c.Bytes([]byte(v)))]++
	}
	if len(counts) != 3 {
		t.Fatalf("distinct ciphertexts = %d, want 3", len(counts))
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max != 3 {
		t.Fatalf("max multiplicity = %d, want 3", max)
	}
}
