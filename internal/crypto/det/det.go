// Package det implements CryptDB's DET encryption layer (§3.1): a
// pseudo-random permutation that deterministically maps equal plaintexts to
// equal ciphertexts under the same column key, enabling equality selects,
// equality joins, GROUP BY, COUNT and DISTINCT at the server while revealing
// only the column's histogram.
//
// Instantiations per the paper:
//   - 64-bit integers: a 64-bit-block PRP (Blowfish in the paper, the
//     feistel package here — see DESIGN.md §2).
//   - byte strings: AES with a zero IV in the CMC wide-block variant so that
//     long values do not leak prefix equality.
package det

import (
	"repro/internal/crypto/cmc"
	"repro/internal/crypto/feistel"
	"repro/internal/crypto/prf"
)

// Cipher encrypts values deterministically under one column key.
// It is safe for concurrent use.
type Cipher struct {
	intPRP *feistel.Cipher
	wide   *cmc.Cipher
}

// New derives a Cipher from arbitrary key material.
func New(key []byte) *Cipher {
	return &Cipher{
		intPRP: feistel.New(prf.Sum(key, []byte("det-int"))),
		wide:   cmc.New(prf.Sum(key, []byte("det-bytes"))),
	}
}

// Uint64 deterministically encrypts a 64-bit integer to a 64-bit ciphertext.
func (c *Cipher) Uint64(pt uint64) uint64 { return c.intPRP.Encrypt(pt) }

// DecryptUint64 inverts Uint64.
func (c *Cipher) DecryptUint64(ct uint64) uint64 { return c.intPRP.Decrypt(ct) }

// Bytes deterministically encrypts a byte string.
func (c *Cipher) Bytes(pt []byte) []byte { return c.wide.Encrypt(pt) }

// DecryptBytes inverts Bytes.
func (c *Cipher) DecryptBytes(ct []byte) ([]byte, error) { return c.wide.Decrypt(ct) }
