package prf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	k := []byte("key")
	a := Sum(k, []byte("hello"), []byte("world"))
	b := Sum(k, []byte("hello"), []byte("world"))
	if !bytes.Equal(a, b) {
		t.Fatal("Sum not deterministic")
	}
	if len(a) != 32 {
		t.Fatalf("Sum length = %d, want 32", len(a))
	}
}

func TestSumChunkingMatters(t *testing.T) {
	k := []byte("key")
	a := Sum(k, []byte("ab"), []byte("c"))
	b := Sum(k, []byte("a"), []byte("bc"))
	if bytes.Equal(a, b) {
		t.Fatal("different chunkings must not collide")
	}
}

func TestSumKeySeparation(t *testing.T) {
	a := Sum([]byte("k1"), []byte("data"))
	b := Sum([]byte("k2"), []byte("data"))
	if bytes.Equal(a, b) {
		t.Fatal("different keys must produce different outputs")
	}
}

func TestStreamDeterministic(t *testing.T) {
	s1 := NewStream([]byte("key"), []byte("ctx"))
	s2 := NewStream([]byte("key"), []byte("ctx"))
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestStreamContextSeparation(t *testing.T) {
	s1 := NewStream([]byte("key"), []byte("ctx1"))
	s2 := NewStream([]byte("key"), []byte("ctx2"))
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws across contexts", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(nRaw uint64) bool {
		n := nRaw%100000 + 1
		s := NewStream([]byte("k"), []byte{byte(nRaw)})
		for i := 0; i < 20; i++ {
			if v := s.Uint64n(n); v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := NewStream([]byte("k"))
	for i := 0; i < 100; i++ {
		if v := s.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) should panic")
		}
	}()
	NewStream([]byte("k")).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := NewStream([]byte("k"))
	for i := 0; i < 1000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Distribution(t *testing.T) {
	s := NewStream([]byte("k"))
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}
