// Package prf provides the pseudo-random primitives every CryptDB
// encryption scheme is built from: a keyed PRF (HMAC-SHA256) and a
// deterministic coin stream (AES-CTR) used wherever an algorithm needs
// "random" choices that must be reproducible from a key, such as the
// hypergeometric sampling inside OPE (§3.1 of the paper).
package prf

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// Sum computes PRF_key(data...) as HMAC-SHA256 over the concatenation of the
// data chunks, each length-prefixed so that distinct chunkings never collide.
func Sum(key []byte, data ...[]byte) []byte {
	mac := hmac.New(sha256.New, key)
	var lenBuf [8]byte
	for _, d := range data {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(d)))
		mac.Write(lenBuf[:])
		mac.Write(d)
	}
	return mac.Sum(nil)
}

// SumUint64 returns the first 8 bytes of Sum as a uint64.
func SumUint64(key []byte, data ...[]byte) uint64 {
	return binary.BigEndian.Uint64(Sum(key, data...))
}

// Stream is a deterministic stream of pseudo-random bits seeded by a key and
// a context string. Two Streams built from the same (key, context) yield the
// same bits, which is what makes OPE encryption deterministic.
type Stream struct {
	ctr cipher.Stream
}

// NewStream derives an AES-256-CTR coin stream from key and context.
func NewStream(key []byte, context ...[]byte) *Stream {
	seed := Sum(key, context...)
	block, err := aes.NewCipher(seed) // 32-byte seed -> AES-256
	if err != nil {
		panic("prf: aes.NewCipher: " + err.Error()) // impossible: fixed key size
	}
	var iv [aes.BlockSize]byte
	return &Stream{ctr: cipher.NewCTR(block, iv[:])}
}

// Bytes fills and returns a fresh slice of n pseudo-random bytes.
func (s *Stream) Bytes(n int) []byte {
	out := make([]byte, n)
	s.ctr.XORKeyStream(out, out)
	return out
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	return binary.BigEndian.Uint64(s.Bytes(8))
}

// Uint64n returns a pseudo-random value in [0, n) without modulo bias.
// It panics if n == 0.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prf: Uint64n(0)")
	}
	if n&(n-1) == 0 { // power of two
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling: draw until the value falls below the largest
	// multiple of n representable in 64 bits.
	max := ^uint64(0) - (^uint64(0) % n)
	for {
		v := s.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a pseudo-random float in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
