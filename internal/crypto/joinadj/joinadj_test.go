package joinadj

import (
	"bytes"
	"testing"
)

var k0 = []byte("shared-prf-key")

func TestDeterministicWithinColumn(t *testing.T) {
	k := DeriveKey([]byte("col-A"))
	a := k.Compute(k0, []byte("alice"))
	b := k.Compute(k0, []byte("alice"))
	if !bytes.Equal(a, b) {
		t.Fatal("JOIN-ADJ must be deterministic")
	}
	if len(a) != Size {
		t.Fatalf("value size = %d, want %d", len(a), Size)
	}
}

func TestInequalityWithinColumn(t *testing.T) {
	k := DeriveKey([]byte("col-A"))
	if bytes.Equal(k.Compute(k0, []byte("alice")), k.Compute(k0, []byte("bob"))) {
		t.Fatal("distinct values collided")
	}
}

func TestNoCrossColumnMatchBeforeAdjust(t *testing.T) {
	// Before adjustment, equal plaintexts in different columns must not
	// match — this is the privacy property of §3.4.
	kA := DeriveKey([]byte("col-A"))
	kB := DeriveKey([]byte("col-B"))
	if bytes.Equal(kA.Compute(k0, []byte("alice")), kB.Compute(k0, []byte("alice"))) {
		t.Fatal("cross-column values matched before adjustment")
	}
}

func TestAdjustEnablesJoin(t *testing.T) {
	kA := DeriveKey([]byte("col-A"))
	kB := DeriveKey([]byte("col-B"))
	valB := kB.Compute(k0, []byte("alice"))

	delta, err := kA.Delta(kB) // re-key B's values to A's key
	if err != nil {
		t.Fatal(err)
	}
	adjusted, err := Adjust(valB, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(adjusted, kA.Compute(k0, []byte("alice"))) {
		t.Fatal("adjusted value does not match the join-base column")
	}
}

func TestAdjustPreservesInequality(t *testing.T) {
	kA := DeriveKey([]byte("col-A"))
	kB := DeriveKey([]byte("col-B"))
	delta, err := kA.Delta(kB)
	if err != nil {
		t.Fatal(err)
	}
	adjAlice, err := Adjust(kB.Compute(k0, []byte("alice")), delta)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(adjAlice, kA.Compute(k0, []byte("bob"))) {
		t.Fatal("adjustment created a spurious match")
	}
}

func TestTransitivity(t *testing.T) {
	// Join A-B then B-C: after both adjust to the same base, A and C
	// values for equal plaintexts match (§3.4 transitivity).
	kA := DeriveKey([]byte("col-A"))
	kB := DeriveKey([]byte("col-B"))
	kC := DeriveKey([]byte("col-C"))

	dB, err := kA.Delta(kB)
	if err != nil {
		t.Fatal(err)
	}
	dC, err := kA.Delta(kC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Adjust(kB.Compute(k0, []byte("v")), dB)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Adjust(kC.Compute(k0, []byte("v")), dC)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, c) {
		t.Fatal("transitive join values do not match")
	}
}

func TestPRFKeySeparation(t *testing.T) {
	// A different shared PRF key (different master key / deployment)
	// must produce unrelated values.
	k := DeriveKey([]byte("col-A"))
	if bytes.Equal(k.Compute([]byte("k0-one"), []byte("v")), k.Compute([]byte("k0-two"), []byte("v"))) {
		t.Fatal("values match across PRF keys")
	}
}

func TestAdjustRejectsGarbage(t *testing.T) {
	kA := DeriveKey([]byte("col-A"))
	kB := DeriveKey([]byte("col-B"))
	delta, err := kA.Delta(kB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Adjust([]byte("not a point"), delta); err == nil {
		t.Fatal("want error for malformed point")
	}
	bad := make([]byte, Size)
	bad[0] = 9
	if _, err := Adjust(bad, delta); err == nil {
		t.Fatal("want error for bad prefix byte")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	k := DeriveKey([]byte("col"))
	val := k.Compute(k0, []byte("data"))
	x, y, err := decompress(val)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compress(x, y), val) {
		t.Fatal("compress/decompress round trip failed")
	}
}
