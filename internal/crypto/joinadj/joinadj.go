// Package joinadj implements CryptDB's JOIN-ADJ adjustable-join primitive
// (§3.4): a keyed, collision-resistant, non-invertible hash whose key the
// DBMS server can switch without seeing plaintext.
//
//	JOIN-ADJ_K(v) = P^(K · PRF_K0(v))            (Equation 2)
//
// where P is a public elliptic-curve point and the exponentiation is
// EC scalar multiplication. To let the server join columns c and c' with
// keys K and K', the proxy sends ΔK = K/K' (mod the group order); the server
// raises every JOIN-ADJ value in c' to ΔK:
//
//	(JOIN-ADJ_K'(v))^ΔK = P^(K'·PRF(v)·K/K') = JOIN-ADJ_K(v)
//
// The full JOIN layer ciphertext is JOIN(v) = JOIN-ADJ(v) ‖ DET(v): the
// JOIN-ADJ part supports cross-column equality, the DET part lets the proxy
// decrypt. The paper uses a NIST curve; we use P-256 from the standard
// library.
package joinadj

import (
	"crypto/elliptic"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/crypto/prf"
)

var curve = elliptic.P256()

// Size is the serialized size of a JOIN-ADJ value (compressed P-256 point).
const Size = 33

// Key is a per-column join key: a scalar in [1, order).
type Key struct {
	k *big.Int
}

// DeriveKey derives a column's JOIN-ADJ key from key-derivation material.
func DeriveKey(material []byte) *Key {
	// Hash to a scalar in [1, N-1].
	n := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	k := new(big.Int).SetBytes(prf.Sum(material, []byte("joinadj-key")))
	k.Mod(k, n)
	k.Add(k, big.NewInt(1))
	return &Key{k: k}
}

// Compute evaluates JOIN-ADJ_K(v) with the shared PRF key k0 (same for all
// columns, derived from MK — §3.4).
func (key *Key) Compute(k0, v []byte) []byte {
	// e = K · PRF_K0(v) mod N
	h := new(big.Int).SetBytes(prf.Sum(k0, []byte("joinadj-prf"), v))
	e := h.Mul(h, key.k)
	e.Mod(e, curve.Params().N)
	if e.Sign() == 0 {
		e.SetInt64(1) // negligible-probability degenerate case
	}
	x, y := curve.ScalarBaseMult(e.Bytes())
	return compress(x, y)
}

// Delta computes ΔK = K / K' mod N: the adjustment token the proxy sends to
// the server to re-key column c' (with key old) to this column's key.
func (key *Key) Delta(old *Key) (*big.Int, error) {
	inv := new(big.Int).ModInverse(old.k, curve.Params().N)
	if inv == nil {
		return nil, errors.New("joinadj: old key not invertible")
	}
	d := new(big.Int).Mul(key.k, inv)
	return d.Mod(d, curve.Params().N), nil
}

// Adjust re-keys one stored JOIN-ADJ value by ΔK. This is the computation
// CryptDB's server-side UDF performs during an onion-layer join adjustment;
// note it requires neither plaintext nor column keys.
func Adjust(val []byte, delta *big.Int) ([]byte, error) {
	x, y, err := decompress(val)
	if err != nil {
		return nil, err
	}
	nx, ny := curve.ScalarMult(x, y, delta.Bytes())
	return compress(nx, ny), nil
}

// compress serializes a point in SEC1 compressed form.
func compress(x, y *big.Int) []byte {
	out := make([]byte, Size)
	out[0] = 2 + byte(y.Bit(0))
	x.FillBytes(out[1:])
	return out
}

// decompress parses a SEC1 compressed P-256 point.
func decompress(b []byte) (*big.Int, *big.Int, error) {
	if len(b) != Size || (b[0] != 2 && b[0] != 3) {
		return nil, nil, fmt.Errorf("joinadj: bad point encoding (%d bytes)", len(b))
	}
	p := curve.Params().P
	x := new(big.Int).SetBytes(b[1:])
	if x.Cmp(p) >= 0 {
		return nil, nil, errors.New("joinadj: x out of range")
	}
	// y² = x³ - 3x + b mod p
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	three := new(big.Int).Lsh(x, 1)
	three.Add(three, x)
	y2.Sub(y2, three)
	y2.Add(y2, curve.Params().B)
	y2.Mod(y2, p)
	y := new(big.Int).ModSqrt(y2, p)
	if y == nil {
		return nil, nil, errors.New("joinadj: not a curve point")
	}
	if y.Bit(0) != uint(b[0]&1) {
		y.Sub(p, y)
	}
	return x, y, nil
}
