package hom

import (
	"testing"
	"testing/quick"
)

// TestHomomorphismChainProperty folds random value sequences through Add
// and checks against the plaintext sum — the invariant behind every SUM
// the DBMS computes.
func TestHomomorphismChainProperty(t *testing.T) {
	k := testKey(t)
	f := func(vals []int16) bool {
		acc, err := k.EncryptZero()
		if err != nil {
			return false
		}
		want := int64(0)
		for _, v := range vals {
			ct, err := k.EncryptInt64(int64(v))
			if err != nil {
				return false
			}
			acc = k.Add(acc, ct)
			want += int64(v)
		}
		got, err := k.DecryptInt64(acc)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestAddPlainChain mirrors repeated UPDATE ... SET x = x + k statements.
func TestAddPlainChain(t *testing.T) {
	k := testKey(t)
	ct, err := k.EncryptInt64(0)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, d := range []int64{5, -3, 1000, -2000, 7} {
		ct = k.AddPlain(ct, d)
		want += d
	}
	got, err := k.DecryptInt64(ct)
	if err != nil || got != want {
		t.Fatalf("chain = %d, want %d (%v)", got, want, err)
	}
}

// TestCiphertextNondeterministicUnderPool confirms the r^n pool preserves
// probabilistic encryption: pooled ciphertexts of equal plaintexts differ.
func TestCiphertextNondeterministicUnderPool(t *testing.T) {
	k := testKey(t)
	if err := k.Precompute(4); err != nil {
		t.Fatal(err)
	}
	a, err := k.EncryptInt64(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.EncryptInt64(9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Fatal("pooled encryption became deterministic")
	}
}
