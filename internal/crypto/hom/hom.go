// Package hom implements CryptDB's HOM layer (§3.1): the Paillier
// cryptosystem, an IND-CPA-secure additively homomorphic scheme. The DBMS
// server multiplies ciphertexts (via a UDF) to obtain the encryption of the
// sum, which supports SUM aggregates, AVG (sum + count) and increment
// UPDATEs without ever seeing plaintext.
//
// Ciphertexts are 2048 bits (n is 1024 bits), matching the paper. Because
// Paillier encryption's dominant cost is computing r^n mod n^2 for a fresh
// random r, the package supports the paper's §3.5.2 optimization of
// precomputing a pool of r^n values off the critical path; see Precompute.
package hom

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"sync"
)

// DefaultBits is the bit length of the modulus n (ciphertexts are 2·n bits).
const DefaultBits = 1024

var one = big.NewInt(1)

// Key holds a Paillier key pair. Public components: N, G. Private: Lambda,
// Mu. The zero value is unusable; construct with GenerateKey.
type Key struct {
	N  *big.Int // modulus
	N2 *big.Int // n^2, the ciphertext modulus
	G  *big.Int // generator, n+1

	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod n^2))^-1 mod n

	// CRT decryption state (Paillier §7): exponentiating mod p² and q²
	// separately with the half-width exponents p-1 and q-1 is ~4x cheaper
	// than one full-width exponentiation mod n². All nil for keys restored
	// without their factorization; Decrypt then takes the slow path.
	p, q     *big.Int
	p2, q2   *big.Int // p², q²
	pm1, qm1 *big.Int // p-1, q-1
	hp, hq   *big.Int // (L_p(g^(p-1) mod p²))^-1 mod p, and mod-q twin
	pInvQ    *big.Int // p^-1 mod q, for the CRT recombination

	mu2  sync.Mutex
	pool []*big.Int // precomputed r^n mod n^2 values
}

// GenerateKey creates a fresh Paillier key with an n-bit modulus.
func GenerateKey(bits int) (*Key, error) {
	if bits < 64 {
		return nil, fmt.Errorf("hom: modulus of %d bits is too small", bits)
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("hom: generating prime: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("hom: generating prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		if new(big.Int).Mul(p, q).BitLen() != bits {
			continue
		}
		k, err := KeyFromPrimes(p, q)
		if err != nil {
			continue // degenerate; retry
		}
		return k, nil
	}
}

// KeyFromPrimes reconstructs the full key — public components, lambda/mu,
// and the CRT decryption state — from its secret prime factorization. The
// proxy's durable state file stores only (p, q); everything else above is
// derived, so a restarted proxy decrypts old Add-onion ciphertexts with a
// key identical to the one that produced them.
func KeyFromPrimes(p, q *big.Int) (*Key, error) {
	if p.Cmp(q) == 0 {
		return nil, fmt.Errorf("hom: p and q must differ")
	}
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	lambda := new(big.Int).Mul(pm1, qm1)
	lambda.Div(lambda, new(big.Int).GCD(nil, nil, pm1, qm1)) // lcm

	n2 := new(big.Int).Mul(n, n)
	g := new(big.Int).Add(n, one)

	// mu = (L(g^lambda mod n^2))^-1 mod n
	glambda := new(big.Int).Exp(g, lambda, n2)
	l := lFunc(glambda, n)
	mu := new(big.Int).ModInverse(l, n)
	if mu == nil {
		return nil, fmt.Errorf("hom: degenerate modulus")
	}

	// CRT decryption constants.
	p2 := new(big.Int).Mul(p, p)
	q2 := new(big.Int).Mul(q, q)
	hp := crtH(g, p, p2, pm1)
	hq := crtH(g, q, q2, qm1)
	pInvQ := new(big.Int).ModInverse(p, q)
	if hp == nil || hq == nil || pInvQ == nil {
		return nil, fmt.Errorf("hom: degenerate primes")
	}
	return &Key{
		N: n, N2: n2, G: g, lambda: lambda, mu: mu,
		p: p, q: q, p2: p2, q2: q2, pm1: pm1, qm1: qm1,
		hp: hp, hq: hq, pInvQ: pInvQ,
	}, nil
}

// Primes returns the secret factorization for serialization, or ok=false
// for a key restored without it (see StripFactors).
func (k *Key) Primes() (p, q *big.Int, ok bool) {
	if k.p == nil {
		return nil, nil, false
	}
	return new(big.Int).Set(k.p), new(big.Int).Set(k.q), true
}

// crtH computes (L_p(g^(p-1) mod p²))^-1 mod p, the per-prime decryption
// constant, where L_p(x) = (x-1)/p. Returns nil when not invertible.
func crtH(g, p, p2, pm1 *big.Int) *big.Int {
	gp := new(big.Int).Exp(g, pm1, p2)
	l := lFunc(gp, p)
	l.Mod(l, p)
	return new(big.Int).ModInverse(l, p)
}

// StripFactors discards the key's prime factorization, modeling a key
// restored from serialized (N, lambda, mu) material only. Decrypt falls
// back to the single full-width exponentiation path.
func (k *Key) StripFactors() {
	k.p, k.q = nil, nil
	k.p2, k.q2 = nil, nil
	k.pm1, k.qm1 = nil, nil
	k.hp, k.hq, k.pInvQ = nil, nil, nil
}

// lFunc computes L(x) = (x-1)/n.
func lFunc(x, n *big.Int) *big.Int {
	l := new(big.Int).Sub(x, one)
	return l.Div(l, n)
}

// Precompute fills the pool with count fresh r^n values so subsequent
// Encrypt calls skip the expensive exponentiation. The paper pre-computes
// 30,000 such values using idle proxy time (§3.5.2, Figure 12).
func (k *Key) Precompute(count int) error {
	vals := make([]*big.Int, 0, count)
	for i := 0; i < count; i++ {
		rn, err := k.freshRN()
		if err != nil {
			return err
		}
		vals = append(vals, rn)
	}
	k.mu2.Lock()
	k.pool = append(k.pool, vals...)
	k.mu2.Unlock()
	return nil
}

// PoolSize reports how many precomputed r^n values remain.
func (k *Key) PoolSize() int {
	k.mu2.Lock()
	defer k.mu2.Unlock()
	return len(k.pool)
}

func (k *Key) freshRN() (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, k.N)
		if err != nil {
			return nil, fmt.Errorf("hom: sampling randomness: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, k.N).Cmp(one) != 0 {
			continue
		}
		return new(big.Int).Exp(r, k.N, k.N2), nil
	}
}

func (k *Key) takeRN() (*big.Int, error) {
	k.mu2.Lock()
	if n := len(k.pool); n > 0 {
		rn := k.pool[n-1]
		k.pool = k.pool[:n-1]
		k.mu2.Unlock()
		return rn, nil
	}
	k.mu2.Unlock()
	return k.freshRN()
}

// Encrypt encrypts a non-negative integer m < n:
// c = g^m · r^n mod n^2.
func (k *Key) Encrypt(m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(k.N) >= 0 {
		return nil, fmt.Errorf("hom: plaintext out of range [0, n)")
	}
	rn, err := k.takeRN()
	if err != nil {
		return nil, err
	}
	// g = n+1, so g^m = 1 + m·n mod n^2 (binomial shortcut).
	gm := new(big.Int).Mul(m, k.N)
	gm.Add(gm, one)
	gm.Mod(gm, k.N2)
	return gm.Mul(gm, rn).Mod(gm, k.N2), nil
}

// EncryptInt64 encrypts a signed 64-bit value, encoding negatives as n - |m|
// so that homomorphic sums of mixed-sign values decrypt correctly as long as
// the true sum stays within ±2^255.
func (k *Key) EncryptInt64(m int64) (*big.Int, error) {
	b := big.NewInt(m)
	if m < 0 {
		b.Add(k.N, b)
	}
	return k.Encrypt(b)
}

// Decrypt recovers the plaintext. With the factorization available it uses
// the CRT: m_p = L_p(c^(p-1) mod p²)·h_p mod p (and the mod-q twin), then
// recombines — two half-width exponentiations with half-width exponents in
// place of one full-width one. Without factors it computes the textbook
// m = L(c^lambda mod n^2) · mu mod n.
func (k *Key) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(k.N2) >= 0 {
		return nil, errors.New("hom: ciphertext out of range")
	}
	if k.p == nil {
		clambda := new(big.Int).Exp(c, k.lambda, k.N2)
		m := lFunc(clambda, k.N)
		m.Mul(m, k.mu)
		return m.Mod(m, k.N), nil
	}
	cp := new(big.Int).Exp(new(big.Int).Mod(c, k.p2), k.pm1, k.p2)
	mp := lFunc(cp, k.p)
	mp.Mul(mp, k.hp).Mod(mp, k.p)

	cq := new(big.Int).Exp(new(big.Int).Mod(c, k.q2), k.qm1, k.q2)
	mq := lFunc(cq, k.q)
	mq.Mul(mq, k.hq).Mod(mq, k.q)

	// CRT: m = m_p + p·((m_q - m_p)·p^-1 mod q), which lies in [0, n).
	u := new(big.Int).Sub(mq, mp)
	u.Mul(u, k.pInvQ).Mod(u, k.q)
	m := new(big.Int).Mul(u, k.p)
	return m.Add(m, mp), nil
}

// DecryptInt64 decrypts and decodes the signed representation used by
// EncryptInt64.
func (k *Key) DecryptInt64(c *big.Int) (int64, error) {
	m, err := k.Decrypt(c)
	if err != nil {
		return 0, err
	}
	half := new(big.Int).Rsh(k.N, 1)
	if m.Cmp(half) > 0 { // negative value
		m.Sub(m, k.N)
	}
	if !m.IsInt64() {
		return 0, errors.New("hom: decrypted value does not fit in int64")
	}
	return m.Int64(), nil
}

// Add homomorphically adds two ciphertexts: Enc(a)·Enc(b) = Enc(a+b).
// This is the operation CryptDB's hom_add UDF performs at the DBMS server.
func (k *Key) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, k.N2)
}

// AddPlain homomorphically adds a plaintext constant: Enc(a)·g^b = Enc(a+b).
func (k *Key) AddPlain(c *big.Int, b int64) *big.Int {
	bb := big.NewInt(b)
	if b < 0 {
		bb.Add(k.N, bb)
	}
	gb := new(big.Int).Mul(bb, k.N)
	gb.Add(gb, one)
	gb.Mod(gb, k.N2)
	out := new(big.Int).Mul(c, gb)
	return out.Mod(out, k.N2)
}

// EncryptZero returns a fresh encryption of zero (the neutral element for
// server-side SUM aggregation).
func (k *Key) EncryptZero() (*big.Int, error) {
	return k.Encrypt(big.NewInt(0))
}

// CiphertextBytes serializes a ciphertext to a fixed-width big-endian blob
// (2·bits/8 bytes), the format stored in the DBMS Add onion column.
func (k *Key) CiphertextBytes(c *big.Int) []byte {
	return c.FillBytes(make([]byte, (k.N2.BitLen()+7)/8))
}

// CiphertextFromBytes parses a blob produced by CiphertextBytes.
func (k *Key) CiphertextFromBytes(b []byte) *big.Int {
	return new(big.Int).SetBytes(b)
}
