package hom

import (
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKey caches one small key across tests; Paillier keygen is expensive
// and key reuse does not couple the tests below.
var (
	testKeyOnce sync.Once
	testKeyVal  *Key
)

func testKey(t *testing.T) *Key {
	t.Helper()
	testKeyOnce.Do(func() {
		k, err := GenerateKey(512)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKeyVal = k
	})
	return testKeyVal
}

func TestRoundTrip(t *testing.T) {
	k := testKey(t)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		ct, err := k.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Fatalf("round trip %d -> %v", m, got)
		}
	}
}

func TestProbabilistic(t *testing.T) {
	k := testKey(t)
	a, err := k.Encrypt(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Encrypt(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Fatal("HOM must be probabilistic (IND-CPA)")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	k := testKey(t)
	f := func(a, b uint32) bool {
		ca, err := k.Encrypt(big.NewInt(int64(a)))
		if err != nil {
			return false
		}
		cb, err := k.Encrypt(big.NewInt(int64(b)))
		if err != nil {
			return false
		}
		sum, err := k.Decrypt(k.Add(ca, cb))
		if err != nil {
			return false
		}
		return sum.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedValues(t *testing.T) {
	k := testKey(t)
	cases := [][2]int64{{-5, 3}, {-100, -200}, {1000, -1}, {0, -7}}
	for _, c := range cases {
		ca, err := k.EncryptInt64(c[0])
		if err != nil {
			t.Fatal(err)
		}
		cb, err := k.EncryptInt64(c[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.DecryptInt64(k.Add(ca, cb))
		if err != nil {
			t.Fatal(err)
		}
		if got != c[0]+c[1] {
			t.Fatalf("%d + %d = %d, want %d", c[0], c[1], got, c[0]+c[1])
		}
	}
}

func TestSumAggregate(t *testing.T) {
	// The UDF path: start from Enc(0) and fold Adds, like SUM over rows.
	k := testKey(t)
	acc, err := k.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, v := range []int64{10, 20, 30, -15, 5} {
		ct, err := k.EncryptInt64(v)
		if err != nil {
			t.Fatal(err)
		}
		acc = k.Add(acc, ct)
		want += v
	}
	got, err := k.DecryptInt64(acc)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SUM = %d, want %d", got, want)
	}
}

func TestAddPlain(t *testing.T) {
	k := testKey(t)
	ct, err := k.EncryptInt64(100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptInt64(k.AddPlain(ct, -30))
	if err != nil {
		t.Fatal(err)
	}
	if got != 70 {
		t.Fatalf("100 + (-30) = %d, want 70", got)
	}
}

func TestIncrementUpdate(t *testing.T) {
	// salary = salary + 1, the UPDATE-inc pattern of §3.3 / Figure 11.
	k := testKey(t)
	ct, err := k.EncryptInt64(41)
	if err != nil {
		t.Fatal(err)
	}
	ct = k.AddPlain(ct, 1)
	got, err := k.DecryptInt64(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("increment gave %d, want 42", got)
	}
}

func TestPrecomputePool(t *testing.T) {
	k := testKey(t)
	if err := k.Precompute(5); err != nil {
		t.Fatal(err)
	}
	if n := k.PoolSize(); n < 5 {
		t.Fatalf("pool size %d, want >= 5", n)
	}
	before := k.PoolSize()
	if _, err := k.EncryptInt64(9); err != nil {
		t.Fatal(err)
	}
	if k.PoolSize() != before-1 {
		t.Fatalf("encrypt did not consume pool: %d -> %d", before, k.PoolSize())
	}
}

func TestCiphertextSize(t *testing.T) {
	// Paper: with a 1024-bit n, ciphertexts are 2048 bits.
	k, err := GenerateKey(DefaultBits)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := k.EncryptInt64(123)
	if err != nil {
		t.Fatal(err)
	}
	b := k.CiphertextBytes(ct)
	if len(b) != 256 {
		t.Fatalf("ciphertext blob = %d bytes, want 256 (2048 bits)", len(b))
	}
	if k.CiphertextFromBytes(b).Cmp(ct) != 0 {
		t.Fatal("serialization round trip failed")
	}
}

func TestEncryptOutOfRange(t *testing.T) {
	k := testKey(t)
	if _, err := k.Encrypt(new(big.Int).Neg(big.NewInt(1))); err == nil {
		t.Fatal("want error for negative raw plaintext")
	}
	if _, err := k.Encrypt(new(big.Int).Set(k.N)); err == nil {
		t.Fatal("want error for plaintext >= n")
	}
}

func TestDecryptOutOfRange(t *testing.T) {
	k := testKey(t)
	if _, err := k.Decrypt(big.NewInt(0)); err == nil {
		t.Fatal("want error for zero ciphertext")
	}
	if _, err := k.Decrypt(new(big.Int).Set(k.N2)); err == nil {
		t.Fatal("want error for ciphertext >= n^2")
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(32); err == nil {
		t.Fatal("want error for tiny modulus")
	}
}

// withoutFactors clones the key's serializable private material (N, lambda,
// mu) only, as a key deserialized without its factorization would look.
func withoutFactors(k *Key) *Key {
	return &Key{N: k.N, N2: k.N2, G: k.G, lambda: k.lambda, mu: k.mu}
}

func TestDecryptCRTMatchesTextbook(t *testing.T) {
	k := testKey(t)
	if k.p == nil {
		t.Fatal("generated key should carry its factors")
	}
	slow := withoutFactors(k)
	for _, m := range []int64{0, 1, 2, 42, -1, -7, 1 << 40, -(1 << 40), 999999937} {
		ct, err := k.EncryptInt64(m)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := k.DecryptInt64(ct)
		if err != nil {
			t.Fatalf("CRT decrypt(%d): %v", m, err)
		}
		ref, err := slow.DecryptInt64(ct)
		if err != nil {
			t.Fatalf("textbook decrypt(%d): %v", m, err)
		}
		if fast != m || ref != m {
			t.Fatalf("decrypt(%d): CRT %d, textbook %d", m, fast, ref)
		}
	}
}

func TestDecryptCRTQuick(t *testing.T) {
	k := testKey(t)
	slow := withoutFactors(k)
	f := func(m int64) bool {
		ct, err := k.EncryptInt64(m)
		if err != nil {
			return false
		}
		a, errA := k.DecryptInt64(ct)
		b, errB := slow.DecryptInt64(ct)
		return errA == nil && errB == nil && a == m && b == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStripFactors(t *testing.T) {
	k, err := GenerateKey(256)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := k.EncryptInt64(1234)
	if err != nil {
		t.Fatal(err)
	}
	k.StripFactors()
	if k.p != nil {
		t.Fatal("factors not stripped")
	}
	m, err := k.DecryptInt64(ct)
	if err != nil || m != 1234 {
		t.Fatalf("fallback decrypt: %d, %v", m, err)
	}
}

// benchKeyPair returns the shared bench key plus its factor-stripped twin.
func benchKeyPair(b *testing.B) (*Key, *Key) {
	b.Helper()
	testKeyOnce.Do(func() {
		k, err := GenerateKey(512)
		if err != nil {
			b.Fatalf("GenerateKey: %v", err)
		}
		testKeyVal = k
	})
	return testKeyVal, withoutFactors(testKeyVal)
}

func BenchmarkDecryptCRT(b *testing.B) {
	k, _ := benchKeyPair(b)
	ct, err := k.EncryptInt64(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DecryptInt64(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptNoCRT(b *testing.B) {
	_, slow := benchKeyPair(b)
	fast, _ := benchKeyPair(b)
	ct, err := fast.EncryptInt64(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slow.DecryptInt64(ct); err != nil {
			b.Fatal(err)
		}
	}
}
