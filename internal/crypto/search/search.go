// Package search implements CryptDB's SEARCH layer (§3.1), the encrypted
// keyword search protocol of Song, Wagner and Perrig applied the way the
// paper applies it: the proxy splits text into keywords, removes duplicates,
// randomly permutes the word positions, pads every word to a fixed size and
// encrypts each word; LIKE "%word%" becomes a server-side UDF that checks an
// encrypted token against each stored word without learning the word.
//
// Per the paper, the only information the server learns from a search is
// which rows matched the requested token, plus the number of keywords
// stored per row.
package search

import (
	"bytes"
	"crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/crypto/prf"
)

// WordSize is the padded size every keyword is encrypted to, hiding word
// lengths.
const WordSize = 16

// saltSize is the per-occurrence randomness prepended to each encrypted word.
const saltSize = 8

// EntrySize is the on-server size of one encrypted keyword.
const EntrySize = saltSize + WordSize

// Cipher encrypts keyword sets for one column. It is safe for concurrent use.
type Cipher struct {
	key []byte
}

// New derives a Cipher from arbitrary key material.
func New(key []byte) *Cipher {
	return &Cipher{key: prf.Sum(key, []byte("search"))}
}

// Token is the trapdoor the proxy hands the server for one search word. The
// server cannot invert it to the word.
type Token []byte

// Keywords splits text into search keywords using standard delimiters,
// lower-casing and deduplicating, mirroring the proxy's default keyword
// extraction. Applications may substitute their own extractor (§3.1).
func Keywords(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	seen := make(map[string]bool, len(fields))
	var out []string
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// EncryptText splits text into unique keywords, pseudo-randomly permutes
// them and encrypts each, returning the blob stored in the Search onion.
func (c *Cipher) EncryptText(text string) ([]byte, error) {
	return c.EncryptWords(Keywords(text))
}

// EncryptWords encrypts an explicit keyword list (for schemas that disable
// duplicate removal / reordering, the caller controls the list).
func (c *Cipher) EncryptWords(words []string) ([]byte, error) {
	// Random permutation of positions: sort by a keyed hash of the word
	// plus fresh randomness so the stored order reveals nothing.
	perm := make([]string, len(words))
	copy(perm, words)
	var shuffleSeed [8]byte
	if _, err := rand.Read(shuffleSeed[:]); err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	sort.Slice(perm, func(i, j int) bool {
		hi := prf.SumUint64(c.key, []byte("perm"), shuffleSeed[:], []byte(perm[i]))
		hj := prf.SumUint64(c.key, []byte("perm"), shuffleSeed[:], []byte(perm[j]))
		return hi < hj
	})

	buf := make([]byte, 0, len(perm)*EntrySize)
	for _, w := range perm {
		entry, err := c.encryptWord(w)
		if err != nil {
			return nil, err
		}
		buf = append(buf, entry...)
	}
	return buf, nil
}

// encryptWord produces salt || MAC(token(w), salt), padded-word-keyed. The
// construction follows the practical variant of Song et al.: the stored
// entry can be tested against a token but reveals neither the word nor
// whether two rows share words (fresh salt per occurrence).
func (c *Cipher) encryptWord(w string) ([]byte, error) {
	salt := make([]byte, saltSize)
	if _, err := rand.Read(salt); err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	tok := c.TokenFor(w)
	mac := prf.Sum(tok, salt)[:WordSize]
	return append(salt, mac...), nil
}

// TokenFor computes the search trapdoor for a word. Only the proxy (key
// holder) can produce tokens.
func (c *Cipher) TokenFor(word string) Token {
	padded := padWord(strings.ToLower(word))
	return prf.Sum(c.key, []byte("word"), padded)
}

// Match reports whether the encrypted blob contains the word behind token.
// This is the computation CryptDB's searchSWP UDF performs on the server;
// note it needs no key.
func Match(blob []byte, token Token) bool {
	if len(blob)%EntrySize != 0 {
		return false
	}
	found := 0
	for off := 0; off+EntrySize <= len(blob); off += EntrySize {
		salt := blob[off : off+saltSize]
		mac := blob[off+saltSize : off+EntrySize]
		want := prf.Sum(token, salt)[:WordSize]
		// Constant-time per entry; scan all entries regardless.
		found |= subtle.ConstantTimeCompare(mac, want)
	}
	return found == 1
}

// WordCount reports the number of keywords stored in a blob — exactly the
// leakage the paper acknowledges for SEARCH.
func WordCount(blob []byte) int { return len(blob) / EntrySize }

func padWord(w string) []byte {
	b := []byte(w)
	if len(b) > WordSize-2 {
		b = b[:WordSize-2]
	}
	padded := make([]byte, WordSize)
	binary.BigEndian.PutUint16(padded[:2], uint16(len(b)))
	copy(padded[2:], b)
	return padded
}

// Probe is a helper for tests: true if two blobs are byte-identical (they
// should never be, for probabilistic SEARCH).
func Probe(a, b []byte) bool { return bytes.Equal(a, b) }
