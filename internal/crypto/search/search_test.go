package search

import (
	"strings"
	"testing"
)

func TestMatchPresentWord(t *testing.T) {
	c := New([]byte("key"))
	blob, err := c.EncryptText("the quick brown fox")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"the", "quick", "brown", "fox"} {
		if !Match(blob, c.TokenFor(w)) {
			t.Errorf("token for present word %q did not match", w)
		}
	}
}

func TestNoMatchAbsentWord(t *testing.T) {
	c := New([]byte("key"))
	blob, err := c.EncryptText("the quick brown fox")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"dog", "quic", "foxx", ""} {
		if Match(blob, c.TokenFor(w)) {
			t.Errorf("token for absent word %q matched", w)
		}
	}
}

func TestCaseInsensitive(t *testing.T) {
	c := New([]byte("key"))
	blob, err := c.EncryptText("Alice sent a Message")
	if err != nil {
		t.Fatal(err)
	}
	if !Match(blob, c.TokenFor("ALICE")) {
		t.Error("search should be case-insensitive")
	}
	if !Match(blob, c.TokenFor("message")) {
		t.Error("search should be case-insensitive")
	}
}

func TestDuplicateRemoval(t *testing.T) {
	c := New([]byte("key"))
	blob, err := c.EncryptText("spam spam spam eggs")
	if err != nil {
		t.Fatal(err)
	}
	if got := WordCount(blob); got != 2 {
		t.Fatalf("WordCount = %d, want 2 (duplicates removed)", got)
	}
}

func TestProbabilisticBlob(t *testing.T) {
	// Two encryptions of the same text must differ (fresh salts and a
	// fresh permutation), so the server cannot tell rows share words.
	c := New([]byte("key"))
	b1, err := c.EncryptText("hello world")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.EncryptText("hello world")
	if err != nil {
		t.Fatal(err)
	}
	if Probe(b1, b2) {
		t.Fatal("identical blobs across encryptions")
	}
}

func TestKeySeparation(t *testing.T) {
	c1 := New([]byte("key1"))
	c2 := New([]byte("key2"))
	blob, err := c1.EncryptText("secret")
	if err != nil {
		t.Fatal(err)
	}
	if Match(blob, c2.TokenFor("secret")) {
		t.Fatal("token from a different key matched")
	}
}

func TestEmptyText(t *testing.T) {
	c := New([]byte("key"))
	blob, err := c.EncryptText("")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != 0 {
		t.Fatalf("blob for empty text = %d bytes, want 0", len(blob))
	}
	if Match(blob, c.TokenFor("anything")) {
		t.Fatal("match against empty blob")
	}
}

func TestKeywords(t *testing.T) {
	got := Keywords("Hello, WORLD! hello... 42 foo-bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("Keywords = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keywords = %v, want %v", got, want)
		}
	}
}

func TestLongWordsTruncated(t *testing.T) {
	c := New([]byte("key"))
	long := strings.Repeat("x", 100)
	blob, err := c.EncryptText(long)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(blob, c.TokenFor(long)) {
		t.Fatal("long word should match its own token")
	}
}

func TestEntrySizeUniform(t *testing.T) {
	// Every word, short or long, occupies EntrySize bytes — hiding
	// word lengths per §3.1.
	c := New([]byte("key"))
	blob, err := c.EncryptText("a extraordinarily")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != 2*EntrySize {
		t.Fatalf("blob = %d bytes, want %d", len(blob), 2*EntrySize)
	}
}

func TestMatchMalformedBlob(t *testing.T) {
	c := New([]byte("key"))
	if Match([]byte{1, 2, 3}, c.TokenFor("x")) {
		t.Fatal("malformed blob matched")
	}
}

func TestEncryptWordsExplicitOrderDisabled(t *testing.T) {
	// Schemas can disable dedup/permutation by passing explicit word
	// lists (§3.1); the blob then contains each occurrence.
	c := New([]byte("key"))
	blob, err := c.EncryptWords([]string{"a", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if WordCount(blob) != 3 {
		t.Fatalf("WordCount = %d, want 3", WordCount(blob))
	}
}
