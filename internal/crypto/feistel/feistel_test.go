package feistel

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	c := New([]byte("key"))
	f := func(v uint64) bool {
		return c.Decrypt(c.Encrypt(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	c := New([]byte("key"))
	if c.Encrypt(42) != c.Encrypt(42) {
		t.Fatal("encryption not deterministic")
	}
}

func TestKeySeparation(t *testing.T) {
	c1 := New([]byte("key1"))
	c2 := New([]byte("key2"))
	same := 0
	for v := uint64(0); v < 64; v++ {
		if c1.Encrypt(v) == c2.Encrypt(v) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 ciphertexts identical across keys", same)
	}
}

func TestPermutationInjective(t *testing.T) {
	c := New([]byte("key"))
	seen := make(map[uint64]uint64)
	for v := uint64(0); v < 10000; v++ {
		ct := c.Encrypt(v)
		if prev, dup := seen[ct]; dup {
			t.Fatalf("collision: Enc(%d) == Enc(%d)", v, prev)
		}
		seen[ct] = v
	}
}

func TestDiffusion(t *testing.T) {
	// Flipping one plaintext bit should change roughly half the
	// ciphertext bits on average.
	c := New([]byte("key"))
	totalFlips := 0
	const trials = 256
	for i := 0; i < trials; i++ {
		v := uint64(i) * 0x9e3779b97f4a7c15
		a := c.Encrypt(v)
		b := c.Encrypt(v ^ 1)
		diff := a ^ b
		for diff != 0 {
			totalFlips += int(diff & 1)
			diff >>= 1
		}
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("average bit flips = %v, want ~32", avg)
	}
}

func TestZeroBlock(t *testing.T) {
	c := New([]byte("key"))
	if c.Encrypt(0) == 0 {
		t.Fatal("Enc(0) == 0 is vanishingly unlikely for a PRP")
	}
	if c.Decrypt(c.Encrypt(0)) != 0 {
		t.Fatal("round trip of zero failed")
	}
}
