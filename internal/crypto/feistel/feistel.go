// Package feistel provides a pseudo-random permutation over 64-bit blocks.
//
// The paper uses Blowfish wherever a 64-bit block cipher is needed (DET and
// RND over integer columns, §3.1) because AES's 128-bit block would double
// ciphertext size. Blowfish is not in the Go standard library, so this
// package substitutes a 4-round Luby–Rackoff Feistel network whose round
// function is AES-based. Four Feistel rounds with independent PRF round
// keys are a strong PRP (Luby & Rackoff 1988), giving the same security
// property (PRP over 64-bit blocks) and the same ciphertext size the paper
// relies on. See DESIGN.md §2.
package feistel

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"

	"repro/internal/crypto/prf"
)

const rounds = 4

// Cipher is a 64-bit-block PRP. It is safe for concurrent use.
type Cipher struct {
	rk [rounds]cipher.Block
}

// New derives a Cipher from arbitrary key material.
func New(key []byte) *Cipher {
	c := &Cipher{}
	for i := 0; i < rounds; i++ {
		rkBytes := prf.Sum(key, []byte("feistel-round"), []byte{byte(i)})
		blk, err := aes.NewCipher(rkBytes) // 32 bytes -> AES-256
		if err != nil {
			panic("feistel: aes.NewCipher: " + err.Error()) // impossible
		}
		c.rk[i] = blk
	}
	return c
}

// round computes the PRF round function F_i(x): AES_rk[i](x || pad)
// truncated to 32 bits.
func (c *Cipher) round(i int, x uint32) uint32 {
	var in, out [aes.BlockSize]byte
	binary.BigEndian.PutUint32(in[:4], x)
	c.rk[i].Encrypt(out[:], in[:])
	return binary.BigEndian.Uint32(out[:4])
}

// Encrypt applies the permutation to a 64-bit block.
func (c *Cipher) Encrypt(v uint64) uint64 {
	l, r := uint32(v>>32), uint32(v)
	for i := 0; i < rounds; i++ {
		l, r = r, l^c.round(i, r)
	}
	return uint64(l)<<32 | uint64(r)
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(v uint64) uint64 {
	l, r := uint32(v>>32), uint32(v)
	for i := rounds - 1; i >= 0; i-- {
		l, r = r^c.round(i, l), l
	}
	return uint64(l)<<32 | uint64(r)
}
