package hgd

import (
	"testing"
	"testing/quick"

	"repro/internal/crypto/prf"
)

func coins(seed byte) *prf.Stream {
	return prf.NewStream([]byte("hgd-test"), []byte{seed})
}

func TestSupportBounds(t *testing.T) {
	f := func(dRaw, wRaw, bRaw uint64, seed byte) bool {
		white := wRaw % 10000
		black := bRaw % 10000
		if white+black == 0 {
			return true
		}
		draws := dRaw % (white + black + 1)
		got := Sample(draws, white, black, coins(seed))
		lo := uint64(0)
		if draws > black {
			lo = draws - black
		}
		hi := white
		if draws < hi {
			hi = draws
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateCases(t *testing.T) {
	cases := []struct {
		draws, white, black, want uint64
	}{
		{0, 10, 10, 0},   // no draws
		{5, 0, 10, 0},    // no white balls
		{5, 10, 0, 5},    // no black balls
		{20, 10, 10, 10}, // draw everything
	}
	for _, c := range cases {
		if got := Sample(c.draws, c.white, c.black, coins(1)); got != c.want {
			t.Errorf("Sample(%d,%d,%d) = %d, want %d", c.draws, c.white, c.black, got, c.want)
		}
	}
}

func TestDeterministicWithSameCoins(t *testing.T) {
	a := Sample(500, 1000, 1000, coins(7))
	b := Sample(500, 1000, 1000, coins(7))
	if a != b {
		t.Fatalf("same coins gave %d and %d", a, b)
	}
}

func TestVariesWithCoins(t *testing.T) {
	seen := map[uint64]bool{}
	for s := byte(0); s < 32; s++ {
		seen[Sample(500, 1000, 1000, coins(s))] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct samples over 32 coin streams", len(seen))
	}
}

func TestMeanSmall(t *testing.T) {
	// E[X] = draws * white / (white+black). HIN branch.
	const draws, white, black = 10, 20, 80
	sum := 0.0
	const n = 3000
	for i := 0; i < n; i++ {
		sum += float64(Sample(draws, white, black, coins(byte(i))))
	}
	// reuse more coin variety than 256 seeds
	mean := sum / n
	want := float64(draws) * white / (white + black) // 2.0
	if mean < want*0.85 || mean > want*1.15 {
		t.Fatalf("mean = %v, want ~%v", mean, want)
	}
}

func TestMeanLarge(t *testing.T) {
	// Large populations exercise the H2PEC rejection branch.
	const draws, white, black = 1 << 20, 1 << 20, 1 << 20
	sum := 0.0
	const n = 200
	for i := 0; i < n; i++ {
		s := prf.NewStream([]byte("large"), []byte{byte(i), byte(i >> 8)})
		sum += float64(Sample(draws, white, black, s))
	}
	mean := sum / n
	want := float64(draws) / 2
	if mean < want*0.99 || mean > want*1.01 {
		t.Fatalf("mean = %v, want ~%v", mean, want)
	}
}

func TestHugePopulation(t *testing.T) {
	// OPE's first recursion step: 2^63 draws from 2^32 white and
	// 2^64-2^32 black balls. Must terminate and stay in support.
	white := uint64(1) << 32
	black := ^uint64(0) - white
	draws := uint64(1) << 63
	got := Sample(draws, white, black, coins(3))
	if got > white {
		t.Fatalf("sample %d exceeds white count", got)
	}
	// The expected value is ~2^31; allow a generous window but
	// catch grossly broken sampling.
	if got < 1<<28 || got > 1<<34 {
		t.Fatalf("sample %d wildly far from expectation 2^31", got)
	}
}

func TestVarianceReasonable(t *testing.T) {
	// Hypergeometric variance = k*(w/(w+b))*(b/(w+b))*((w+b-k)/(w+b-1)).
	const draws, white, black = 100, 500, 500
	var vals []float64
	for i := 0; i < 500; i++ {
		s := prf.NewStream([]byte("var"), []byte{byte(i), byte(i >> 8)})
		vals = append(vals, float64(Sample(draws, white, black, s)))
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	varSum := 0.0
	for _, v := range vals {
		varSum += (v - mean) * (v - mean)
	}
	variance := varSum / float64(len(vals))
	want := 100.0 * 0.5 * 0.5 * (900.0 / 999.0) // ~22.5
	if variance < want*0.6 || variance > want*1.5 {
		t.Fatalf("variance = %v, want ~%v", variance, want)
	}
}

func TestDrawsExceedPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic when draws exceed population")
		}
	}()
	Sample(21, 10, 10, coins(0))
}
