// Package hgd samples from the hypergeometric distribution using
// deterministic pseudo-random coins. It is the core of the Boldyreva
// order-preserving encryption scheme (§3.1): at every recursion step OPE
// asks "of the M domain points mapped into this range, how many fall in the
// lower half?", which is exactly a hypergeometric draw.
//
// The paper ports Kachitvichyanukul & Schmeiser's 1988 Fortran routine
// (H2PEC, ACM TOMS Algorithm 668); this package is a Go port of the same
// algorithm: inverse-transform sampling (HIN) near the mode for small
// problems and the H2PEC rectangle/exponential-tail rejection sampler for
// large ones, with acceptance tests evaluated in log space via a Stirling
// approximation of ln(n!).
package hgd

import (
	"math"

	"repro/internal/crypto/prf"
)

// ln(1e25): scaling constant from the original Fortran, used by the
// inverse-transform branch to delay floating-point underflow.
const con = 57.56462733

// Sample returns the number of white balls obtained when drawing `draws`
// balls without replacement from an urn of `white` white and `black` black
// balls, using coins as the randomness source. The result is always within
// [max(0, draws-black), min(white, draws)].
func Sample(draws, white, black uint64, coins *prf.Stream) uint64 {
	// Population may be up to 2^64 (OPE's root node), which overflows
	// uint64; white+black < white detects that case, where any draws
	// value is valid.
	if pop := white + black; pop >= white && draws > pop {
		panic("hgd: draws exceed population")
	}
	if draws == 0 || white == 0 {
		return 0
	}
	if black == 0 {
		return draws
	}

	// Symmetry reductions from the Fortran: sample with the smaller color
	// count and the smaller draw count, then map back.
	tn := float64(white) + float64(black)
	var n1, n2 float64
	if white <= black {
		n1, n2 = float64(white), float64(black)
	} else {
		n1, n2 = float64(black), float64(white)
	}
	var k float64
	if 2*float64(draws) <= tn {
		k = float64(draws)
	} else {
		k = tn - float64(draws)
	}

	ix := sampleCanonical(k, n1, n2, coins)

	// Undo the symmetry reductions.
	if 2*float64(draws) > tn {
		if white > black {
			ix = float64(draws) - float64(black) + ix
		} else {
			ix = float64(white) - ix
		}
	} else if white > black {
		ix = float64(draws) - ix
	}

	// Clamp to the mathematically valid support; floating-point error in
	// the symmetry adjustments must never escape it.
	lo := float64(0)
	if draws > black {
		lo = float64(draws - black)
	}
	hi := math.Min(float64(white), float64(draws))
	if ix < lo {
		ix = lo
	}
	if ix > hi {
		ix = hi
	}
	return uint64(ix)
}

// sampleCanonical samples with n1 <= n2 and 2k <= n1+n2.
func sampleCanonical(k, n1, n2 float64, coins *prf.Stream) float64 {
	tn := n1 + n2
	m := math.Floor((k + 1) * (n1 + 1) / (tn + 2)) // mode
	minjx := math.Max(0, k-n2)
	maxjx := math.Min(n1, k)

	if minjx >= maxjx {
		return maxjx
	}
	if m-minjx < 10 {
		return sampleInverse(k, n1, n2, minjx, maxjx, coins)
	}
	return sampleH2PEC(k, n1, n2, m, minjx, maxjx, coins)
}

// sampleInverse is the HIN inverse-transform branch, used when the mode is
// close to the lower support bound.
func sampleInverse(k, n1, n2, minjx, maxjx float64, coins *prf.Stream) float64 {
	tn := n1 + n2
	var w float64
	if k < n2 {
		w = math.Exp(con + afc(n2) + afc(n1+n2-k) - afc(n2-k) - afc(tn))
	} else {
		// minjx = k-n2 > 0: P(X=k-n2) = C(n1,k-n2)/C(tn,k).
		w = math.Exp(con + afc(n1) + afc(k) + afc(tn-k) -
			afc(k-n2) - afc(n1+n2-k) - afc(tn))
	}
	const scale = 1e25
	for attempt := 0; ; attempt++ {
		if attempt > 10000 {
			// Numerically degenerate; fall back to the mode region.
			return math.Max(minjx, math.Min(maxjx, math.Floor((k+1)*(n1+1)/(tn+2))))
		}
		p := w
		ix := minjx
		u := coins.Float64() * scale
		overflow := false
		for u > p {
			u -= p
			p = p * (n1 - ix) * (k - ix) / ((ix + 1) * (n2 - k + 1 + ix))
			ix++
			if ix > maxjx || p <= 0 || math.IsNaN(p) {
				overflow = true
				break
			}
		}
		if !overflow {
			return ix
		}
	}
}

// sampleH2PEC is the rectangle + exponential-tails rejection sampler.
func sampleH2PEC(k, n1, n2, m, minjx, maxjx float64, coins *prf.Stream) float64 {
	tn := n1 + n2
	s := math.Sqrt((tn - k) * k * n1 * n2 / ((tn - 1) * tn * tn))
	d := math.Trunc(1.5*s) + 0.5
	xl := m - d + 0.5
	xr := m + d + 0.5
	a := afc(m) + afc(n1-m) + afc(k-m) + afc(n2-k+m)
	kl := math.Exp(a - afc(xl) - afc(n1-xl) - afc(k-xl) - afc(n2-k+xl))
	kr := math.Exp(a - afc(xr-1) - afc(n1-xr+1) - afc(k-xr+1) - afc(n2-k+xr-1))
	lamdl := -math.Log(xl * (n2 - k + xl) / ((n1 - xl + 1) * (k - xl + 1)))
	lamdr := -math.Log((n1 - xr + 1) * (k - xr + 1) / (xr * (n2 - k + xr)))
	p1 := 2 * d
	p2 := p1 + kl/lamdl
	p3 := p2 + kr/lamdr

	for attempt := 0; attempt < 100000; attempt++ {
		u := coins.Float64() * p3
		v := coins.Float64()
		var ix float64
		switch {
		case u <= p1: // rectangular region around the mode
			ix = math.Floor(xl + u)
		case u <= p2: // left exponential tail
			ix = math.Floor(xl + math.Log(v)/lamdl)
			if ix < minjx {
				continue
			}
			v = v * (u - p1) * lamdl
		default: // right exponential tail
			ix = math.Floor(xr - math.Log(v)/lamdr)
			if ix > maxjx {
				continue
			}
			v = v * (u - p2) * lamdr
		}
		if ix < minjx || ix > maxjx || v <= 0 {
			continue
		}
		// Log-space acceptance test: accept iff v <= f(ix)/f(mode).
		alv := math.Log(v)
		if alv <= a-afc(ix)-afc(n1-ix)-afc(k-ix)-afc(n2-k+ix) {
			return ix
		}
	}
	// Rejection failed to converge (possible only under extreme
	// floating-point degeneracy); return the mode.
	return math.Max(minjx, math.Min(maxjx, m))
}

// small factorials for the exact branch of afc.
var lnFact = [...]float64{
	0,                  // ln 0!
	0,                  // ln 1!
	0.6931471805599453, // ln 2!
	1.791759469228055,
	3.1780538303479458,
	4.787491742782046,
	6.579251212010101,
	8.525161361065415, // ln 7!
}

// afc approximates ln(i!). Exact for i <= 7, Stirling with correction terms
// beyond, matching the AFC function of the original Fortran.
func afc(i float64) float64 {
	if i < 0 {
		// Out-of-support probe from a rejection candidate; make the
		// acceptance test fail by pretending the weight is -inf.
		return math.Inf(1)
	}
	if i <= 7 {
		return lnFact[int(i)]
	}
	return 0.5*math.Log(2*math.Pi) + (i+0.5)*math.Log(i) - i +
		1/(12*i) - 1/(360*i*i*i)
}
