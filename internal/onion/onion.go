// Package onion defines CryptDB's onion-of-encryption model (§3.2,
// Figure 2): each data item is stored in one or more onions — Eq, Ord, Add
// and Search — whose layers provide decreasing security but increasing
// server-side functionality. The proxy peels layers at run time in response
// to the classes of computation queries require, never below a
// developer-specified minimum.
package onion

import (
	"fmt"

	"repro/internal/sqlparser"
)

// Onion identifies one of the ciphertext onions a column may carry.
type Onion string

// The four onions of Figure 2. JAdj carries the JOIN-ADJ component of the
// merged DET+JOIN layer; storing it beside Eq (rather than concatenated
// inside it) preserves the construction JOIN(v) = JOIN-ADJ(v) ‖ DET(v)
// while letting the DBMS index each component (see DESIGN.md §2).
const (
	Eq     Onion = "Eq"
	JAdj   Onion = "JAdj"
	Ord    Onion = "Ord"
	Add    Onion = "Add"
	Search Onion = "Search"
)

// Layer is one encryption layer within an onion.
type Layer string

// Layers, strongest to weakest.
const (
	RND     Layer = "RND"
	HOM     Layer = "HOM"
	SEARCH  Layer = "SEARCH"
	DET     Layer = "DET"
	JOIN    Layer = "JOIN"
	OPE     Layer = "OPE"
	OPEJOIN Layer = "OPEJOIN"
	PLAIN   Layer = "PLAIN"
)

// SecurityRank orders layers for the MinEnc analysis of §8.3: RND and HOM
// are strongest, then SEARCH, then DET/JOIN, then OPE; PLAIN is no
// protection at all.
func (l Layer) SecurityRank() int {
	switch l {
	case RND, HOM:
		return 5
	case SEARCH:
		return 4
	case DET:
		return 3
	case JOIN:
		return 2
	case OPE, OPEJOIN:
		return 1
	case PLAIN:
		return 0
	}
	return -1
}

// LayerFromString parses a layer name (for MINENC annotations).
func LayerFromString(s string) (Layer, error) {
	switch Layer(s) {
	case RND, HOM, SEARCH, DET, JOIN, OPE, OPEJOIN, PLAIN:
		return Layer(s), nil
	}
	return "", fmt.Errorf("onion: unknown layer %q", s)
}

// StackFor returns the layer stack (outermost first) of an onion for a
// column type, or nil if the onion does not apply to the type — e.g. the
// Search onion makes no sense for integers and Add makes no sense for
// strings (§3.2).
func StackFor(o Onion, t sqlparser.ColType) []Layer {
	switch o {
	case Eq:
		return []Layer{RND, DET}
	case JAdj:
		if t == sqlparser.TypeBlob {
			return nil
		}
		return []Layer{RND, JOIN}
	case Ord:
		if t == sqlparser.TypeBlob {
			return nil
		}
		return []Layer{RND, OPE}
	case Add:
		if t != sqlparser.TypeInt {
			return nil
		}
		return []Layer{HOM}
	case Search:
		if t != sqlparser.TypeText {
			return nil
		}
		return []Layer{SEARCH}
	}
	return nil
}

// Onions lists the onions applicable to a column type, in a fixed order.
func Onions(t sqlparser.ColType) []Onion {
	var out []Onion
	for _, o := range []Onion{Eq, JAdj, Ord, Add, Search} {
		if StackFor(o, t) != nil {
			out = append(out, o)
		}
	}
	return out
}

// Class is a class of computation a query performs on a column (§2.1).
type Class int

// Computation classes and the onion layer each one requires.
const (
	ClassNone Class = iota // projection only
	ClassEquality
	ClassJoin
	ClassOrder
	ClassRangeJoin
	ClassSum
	ClassIncrement
	ClassSearch
	ClassPlaintext // computation CryptDB cannot run on ciphertext
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassEquality:
		return "equality"
	case ClassJoin:
		return "join"
	case ClassOrder:
		return "order"
	case ClassRangeJoin:
		return "range-join"
	case ClassSum:
		return "sum"
	case ClassIncrement:
		return "increment"
	case ClassSearch:
		return "search"
	case ClassPlaintext:
		return "needs-plaintext"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Requirement returns the (onion, layer) a computation class requires.
func (c Class) Requirement() (Onion, Layer, bool) {
	switch c {
	case ClassEquality:
		return Eq, DET, true
	case ClassJoin:
		return JAdj, JOIN, true
	case ClassOrder:
		return Ord, OPE, true
	case ClassRangeJoin:
		return Ord, OPEJOIN, true
	case ClassSum, ClassIncrement:
		return Add, HOM, true
	case ClassSearch:
		return Search, SEARCH, true
	}
	return "", "", false
}

// State tracks the current outermost layer of one onion of one column.
type State struct {
	Stack []Layer // outermost .. innermost
	Cur   int     // index into Stack of the current outermost layer
}

// NewState builds the initial (fully wrapped) state for an onion stack.
func NewState(stack []Layer) *State {
	return &State{Stack: stack}
}

// Current returns the current outermost layer.
func (s *State) Current() Layer { return s.Stack[s.Cur] }

// AtOrBelow reports whether the onion is already peeled to l or deeper:
// l appears at or above the current layer pointer.
func (s *State) AtOrBelow(l Layer) bool {
	for i := 0; i <= s.Cur && i < len(s.Stack); i++ {
		if s.Stack[i] == l {
			return true
		}
	}
	return false
}

// LayersAbove returns the layers that must be stripped (outermost first) to
// reach layer l, or an error if l is not in the remaining stack.
func (s *State) LayersAbove(l Layer) ([]Layer, error) {
	for i := s.Cur; i < len(s.Stack); i++ {
		if s.Stack[i] == l {
			return s.Stack[s.Cur:i], nil
		}
	}
	return nil, fmt.Errorf("onion: layer %s not reachable from %s", l, s.Current())
}

// Descend moves the current layer pointer down by one.
func (s *State) Descend() {
	if s.Cur < len(s.Stack)-1 {
		s.Cur++
	}
}
