package onion

import (
	"testing"

	"repro/internal/sqlparser"
)

func TestStackFor(t *testing.T) {
	cases := []struct {
		o    Onion
		typ  sqlparser.ColType
		want []Layer // nil means "not applicable"
	}{
		{Eq, sqlparser.TypeInt, []Layer{RND, DET}},
		{Eq, sqlparser.TypeText, []Layer{RND, DET}},
		{JAdj, sqlparser.TypeInt, []Layer{RND, JOIN}},
		{JAdj, sqlparser.TypeBlob, nil},
		{Ord, sqlparser.TypeInt, []Layer{RND, OPE}},
		{Ord, sqlparser.TypeBlob, nil},
		{Add, sqlparser.TypeInt, []Layer{HOM}},
		{Add, sqlparser.TypeText, nil}, // Add makes no sense for strings (§3.2)
		{Search, sqlparser.TypeText, []Layer{SEARCH}},
		{Search, sqlparser.TypeInt, nil}, // Search makes no sense for ints
	}
	for _, c := range cases {
		got := StackFor(c.o, c.typ)
		if len(got) != len(c.want) {
			t.Errorf("StackFor(%s, %s) = %v, want %v", c.o, c.typ, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("StackFor(%s, %s) = %v, want %v", c.o, c.typ, got, c.want)
			}
		}
	}
}

func TestOnionsPerType(t *testing.T) {
	if got := len(Onions(sqlparser.TypeInt)); got != 4 { // Eq JAdj Ord Add
		t.Errorf("int onions = %d, want 4", got)
	}
	if got := len(Onions(sqlparser.TypeText)); got != 4 { // Eq JAdj Ord Search
		t.Errorf("text onions = %d, want 4", got)
	}
	if got := len(Onions(sqlparser.TypeBlob)); got != 1 { // Eq only
		t.Errorf("blob onions = %d, want 1", got)
	}
}

func TestSecurityRankOrdering(t *testing.T) {
	// The MinEnc ordering of §8.3: RND=HOM > SEARCH > DET > JOIN > OPE > PLAIN.
	order := []Layer{RND, SEARCH, DET, JOIN, OPE, PLAIN}
	for i := 1; i < len(order); i++ {
		if order[i-1].SecurityRank() <= order[i].SecurityRank() {
			t.Errorf("%s rank %d should exceed %s rank %d",
				order[i-1], order[i-1].SecurityRank(), order[i], order[i].SecurityRank())
		}
	}
	if RND.SecurityRank() != HOM.SecurityRank() {
		t.Error("RND and HOM should rank equal (both leak nothing)")
	}
}

func TestStateTransitions(t *testing.T) {
	st := NewState([]Layer{RND, DET})
	if st.Current() != RND {
		t.Fatalf("initial layer %s", st.Current())
	}
	if st.AtOrBelow(DET) {
		t.Fatal("fresh state claims DET already reached")
	}
	if !st.AtOrBelow(RND) {
		t.Fatal("fresh state should be at RND")
	}
	layers, err := st.LayersAbove(DET)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 1 || layers[0] != RND {
		t.Fatalf("layers above DET = %v", layers)
	}
	st.Descend()
	if st.Current() != DET || !st.AtOrBelow(DET) || !st.AtOrBelow(RND) {
		t.Fatalf("after descend: current %s", st.Current())
	}
	// Descending past the bottom stays at the bottom.
	st.Descend()
	if st.Current() != DET {
		t.Fatalf("descended past innermost: %s", st.Current())
	}
	if _, err := st.LayersAbove(RND); err == nil {
		t.Fatal("LayersAbove should fail for layers already peeled")
	}
}

func TestRequirements(t *testing.T) {
	cases := []struct {
		class Class
		o     Onion
		l     Layer
	}{
		{ClassEquality, Eq, DET},
		{ClassJoin, JAdj, JOIN},
		{ClassOrder, Ord, OPE},
		{ClassRangeJoin, Ord, OPEJOIN},
		{ClassSum, Add, HOM},
		{ClassIncrement, Add, HOM},
		{ClassSearch, Search, SEARCH},
	}
	for _, c := range cases {
		o, l, ok := c.class.Requirement()
		if !ok || o != c.o || l != c.l {
			t.Errorf("%v requirement = (%s, %s, %v), want (%s, %s)", c.class, o, l, ok, c.o, c.l)
		}
	}
	if _, _, ok := ClassNone.Requirement(); ok {
		t.Error("ClassNone should have no requirement")
	}
	if _, _, ok := ClassPlaintext.Requirement(); ok {
		t.Error("ClassPlaintext should have no requirement")
	}
}

func TestLayerFromString(t *testing.T) {
	if l, err := LayerFromString("DET"); err != nil || l != DET {
		t.Fatalf("got %v, %v", l, err)
	}
	if _, err := LayerFromString("BOGUS"); err == nil {
		t.Fatal("want error for unknown layer")
	}
}
