package forum

import (
	"testing"

	"repro/internal/mp"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/workload"
)

var smallCfg = Config{Users: 4, Forums: 2, Posts: 5, Msgs: 3, Seed: 1}

func TestPlainForum(t *testing.T) {
	ex := workload.PlainDB{DB: sqldb.New()}
	if err := Load(ex, smallCfg, nil); err != nil {
		t.Fatal(err)
	}
	s := NewSim(ex, smallCfg, nil)
	for _, k := range Kinds() {
		if _, err := s.Request(k); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, _, err := s.Mix(); err != nil {
			t.Fatalf("mix: %v", err)
		}
	}
}

func TestEncryptedForumSingle(t *testing.T) {
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(p, smallCfg, nil); err != nil {
		t.Fatal(err)
	}
	s := NewSim(p, smallCfg, nil)
	for i := 0; i < 50; i++ {
		if _, _, err := s.Mix(); err != nil {
			t.Fatalf("mix: %v", err)
		}
	}
}

func TestAnnotatedForumMultiPrincipal(t *testing.T) {
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	m := mp.New(p, mp.Options{RSABits: 1024})
	cfg := smallCfg
	cfg.Annotated = true
	if err := Load(m, cfg, m.Login); err != nil {
		t.Fatal(err)
	}
	s := NewSim(m, cfg, m.Login)
	for _, k := range Kinds() {
		if _, err := s.Request(k); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, _, err := s.Mix(); err != nil {
			t.Fatalf("mix: %v", err)
		}
	}
}

func TestPassthroughForum(t *testing.T) {
	ex := workload.Passthrough{DB: sqldb.New()}
	if err := Load(ex, smallCfg, nil); err != nil {
		t.Fatal(err)
	}
	s := NewSim(ex, smallCfg, nil)
	for i := 0; i < 30; i++ {
		if _, _, err := s.Mix(); err != nil {
			t.Fatalf("mix: %v", err)
		}
	}
}
