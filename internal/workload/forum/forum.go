// Package forum simulates the phpBB workload of §8.4.2: users browse
// forums, read and write posts, and read and write private messages. Each
// Request bundles the tens of SQL queries a phpBB HTTP request issues, so
// throughput and latency numbers are directly comparable in shape to
// Figures 14 and 15.
package forum

import (
	"fmt"
	"math/rand"

	"repro/internal/sqldb"
	"repro/internal/workload"
)

// Config sizes the forum.
type Config struct {
	Users  int
	Forums int
	Posts  int // preloaded posts per forum
	Msgs   int // preloaded private messages per user
	Seed   int64
	// Annotated selects the multi-principal schema (private messages and
	// posts ENC FOR principals); otherwise the single-principal schema
	// is used. The paper's Figure 14 runs with sensitive fields
	// annotated.
	Annotated bool
}

func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 10
	}
	if c.Forums == 0 {
		c.Forums = 3
	}
	if c.Posts == 0 {
		c.Posts = 20
	}
	if c.Msgs == 0 {
		c.Msgs = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RequestKind is one of the phpBB request types measured in Figure 15.
type RequestKind int

// The five request kinds of Figure 15.
const (
	Login RequestKind = iota
	ReadPost
	WritePost
	ReadMsg
	WriteMsg
	numKinds
)

func (k RequestKind) String() string {
	switch k {
	case Login:
		return "Login"
	case ReadPost:
		return "R post"
	case WritePost:
		return "W post"
	case ReadMsg:
		return "R msg"
	case WriteMsg:
		return "W msg"
	}
	return fmt.Sprintf("RequestKind(%d)", int(k))
}

// Kinds lists the request kinds in display order.
func Kinds() []RequestKind {
	return []RequestKind{Login, ReadPost, WritePost, ReadMsg, WriteMsg}
}

// Schema returns the forum DDL. With annotations, private messages are
// readable only by sender and recipient and posts only by forum members
// (Figures 4 and 5).
func Schema(annotated bool) []string {
	if !annotated {
		return []string{
			"CREATE TABLE users (userid INT PRIMARY KEY, username TEXT, joined INT PLAIN)",
			"CREATE TABLE forums (forumid INT PRIMARY KEY, fname TEXT)",
			"CREATE TABLE posts (postid INT PRIMARY KEY, forumid INT, author INT, posted INT PLAIN, body TEXT)",
			"CREATE TABLE privmsgs (msgid INT PRIMARY KEY, subject TEXT, msgtext TEXT)",
			"CREATE TABLE privmsgs_to (msgid INT, rcpt_id INT, sender_id INT)",
			"CREATE INDEX idx_posts_forum ON posts (forumid)",
			"CREATE INDEX idx_pm_to ON privmsgs_to (rcpt_id)",
		}
	}
	// The annotated schema mirrors the paper's phpBB deployment: only the
	// notably sensitive fields (post bodies, private messages) are
	// encrypted — for principals, per Figures 4 and 5 — while ids and
	// timestamps stay plaintext (§3.5.2 developer annotations; Figure 9
	// shows phpBB encrypting 23 of 563 columns).
	return []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE puser, msg, forum_post",
		`CREATE TABLE users (userid INT PLAIN PRIMARY KEY, username TEXT, joined INT PLAIN,
			(username physical_user) SPEAKS FOR (userid puser))`,
		"CREATE TABLE forums (forumid INT PLAIN PRIMARY KEY, fname TEXT)",
		`CREATE TABLE forum_access (userid INT PLAIN, forumid INT PLAIN,
			(userid puser) SPEAKS FOR (forumid forum_post))`,
		`CREATE TABLE posts (postid INT PLAIN PRIMARY KEY, forumid INT PLAIN, author INT PLAIN, posted INT PLAIN,
			body TEXT ENC FOR (forumid forum_post))`,
		`CREATE TABLE privmsgs_to (msgid INT PLAIN, rcpt_id INT PLAIN, sender_id INT PLAIN,
			(sender_id puser) SPEAKS FOR (msgid msg),
			(rcpt_id puser) SPEAKS FOR (msgid msg))`,
		`CREATE TABLE privmsgs (msgid INT PLAIN PRIMARY KEY,
			subject TEXT ENC FOR (msgid msg),
			msgtext TEXT ENC FOR (msgid msg))`,
		"CREATE INDEX idx_posts_forum ON posts (forumid)",
		"CREATE INDEX idx_pm_to ON privmsgs_to (rcpt_id)",
	}
}

// Sim drives the workload against one executor.
type Sim struct {
	ex      workload.Executor
	cfg     Config
	rng     *rand.Rand
	nextPID int64
	nextMID int64
	// login is called for Login requests in multi-principal mode; nil
	// otherwise.
	login func(user, password string) error
}

// NewSim builds a simulator. login may be nil for non-annotated runs.
// Concurrent simulators must use distinct Seeds: generated post/message ids
// are partitioned by seed.
func NewSim(ex workload.Executor, cfg Config, login func(user, password string) error) *Sim {
	cfg = cfg.withDefaults()
	part := (cfg.Seed%1000 + 1) * 1_000_000
	return &Sim{
		ex:      ex,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed + 3)),
		nextPID: part + int64(cfg.Forums*cfg.Posts+1),
		nextMID: part + int64(cfg.Users*cfg.Msgs+1),
		login:   login,
	}
}

func password(u int) string { return fmt.Sprintf("pw-%d", u) }

// body pads content to a realistic forum-post length so storage accounting
// is comparable to the paper's phpBB database.
func body(prefix string, rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz      "
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return prefix + " " + string(b)
}

// Username for user u.
func Username(u int) string { return fmt.Sprintf("user%d", u) }

// Load creates the schema and preloads users, forums, posts and messages.
// In annotated mode every user is logged in during the load (senders must
// hold keys) and stays logged in, matching the paper's active-user setup.
func Load(ex workload.Executor, cfg Config, login func(user, password string) error) error {
	cfg = cfg.withDefaults()
	for _, ddl := range Schema(cfg.Annotated) {
		if _, err := ex.Execute(ddl); err != nil {
			return fmt.Errorf("forum: %w", err)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for u := 1; u <= cfg.Users; u++ {
		if login != nil {
			if err := login(Username(u), password(u)); err != nil {
				return err
			}
		}
		if _, err := ex.Execute("INSERT INTO users (userid, username, joined) VALUES (?, ?, ?)",
			sqldb.Int(int64(u)), sqldb.Text(Username(u)), sqldb.Int(1000000+int64(u))); err != nil {
			return err
		}
	}
	for f := 1; f <= cfg.Forums; f++ {
		if _, err := ex.Execute("INSERT INTO forums (forumid, fname) VALUES (?, ?)",
			sqldb.Int(int64(f)), sqldb.Text(fmt.Sprintf("Forum %d", f))); err != nil {
			return err
		}
		if cfg.Annotated {
			// Grant every user access to every forum's posts (the
			// paper's workload has all clients browsing all forums).
			for u := 1; u <= cfg.Users; u++ {
				if _, err := ex.Execute("INSERT INTO forum_access (userid, forumid) VALUES (?, ?)",
					sqldb.Int(int64(u)), sqldb.Int(int64(f))); err != nil {
					return err
				}
			}
		}
	}
	pid := int64(1)
	for f := 1; f <= cfg.Forums; f++ {
		for i := 0; i < cfg.Posts; i++ {
			if _, err := ex.Execute(
				"INSERT INTO posts (postid, forumid, author, posted, body) VALUES (?, ?, ?, ?, ?)",
				sqldb.Int(pid), sqldb.Int(int64(f)), sqldb.Int(int64(1+rng.Intn(cfg.Users))),
				sqldb.Int(2000000+pid), sqldb.Text(body(fmt.Sprintf("post %d forum %d", pid, f), rng, 220))); err != nil {
				return err
			}
			pid++
		}
	}
	mid := int64(1)
	for u := 1; u <= cfg.Users; u++ {
		for i := 0; i < cfg.Msgs; i++ {
			sender := 1 + rng.Intn(cfg.Users)
			if _, err := ex.Execute(
				"INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (?, ?, ?)",
				sqldb.Int(mid), sqldb.Int(int64(u)), sqldb.Int(int64(sender))); err != nil {
				return err
			}
			if _, err := ex.Execute(
				"INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (?, ?, ?)",
				sqldb.Int(mid), sqldb.Text(fmt.Sprintf("subject %d", mid)),
				sqldb.Text(body(fmt.Sprintf("private message %d", mid), rng, 220))); err != nil {
				return err
			}
			mid++
		}
	}
	return nil
}

// Request executes one request of the given kind, returning the number of
// SQL queries issued.
func (s *Sim) Request(kind RequestKind) (int, error) {
	u := 1 + s.rng.Intn(s.cfg.Users)
	f := 1 + s.rng.Intn(s.cfg.Forums)
	switch kind {
	case Login:
		if s.login != nil {
			if err := s.login(Username(u), password(u)); err != nil {
				return 0, err
			}
		}
		q := []func() error{
			func() error {
				_, err := s.ex.Execute("SELECT userid, username FROM users WHERE username = ?", sqldb.Text(Username(u)))
				return err
			},
			func() error {
				_, err := s.ex.Execute("SELECT COUNT(*) FROM privmsgs_to WHERE rcpt_id = ?", sqldb.Int(int64(u)))
				return err
			},
			func() error {
				_, err := s.ex.Execute("SELECT forumid, fname FROM forums")
				return err
			},
		}
		return runAll(q)
	case ReadPost:
		q := []func() error{
			func() error {
				_, err := s.ex.Execute("SELECT fname FROM forums WHERE forumid = ?", sqldb.Int(int64(f)))
				return err
			},
			func() error {
				_, err := s.ex.Execute(
					"SELECT postid, author, posted, body FROM posts WHERE forumid = ? ORDER BY posted DESC LIMIT 10",
					sqldb.Int(int64(f)))
				return err
			},
			func() error {
				_, err := s.ex.Execute("SELECT COUNT(*) FROM posts WHERE forumid = ?", sqldb.Int(int64(f)))
				return err
			},
		}
		return runAll(q)
	case WritePost:
		s.nextPID++
		pid := s.nextPID
		q := []func() error{
			func() error {
				_, err := s.ex.Execute("SELECT userid FROM users WHERE userid = ?", sqldb.Int(int64(u)))
				return err
			},
			func() error {
				_, err := s.ex.Execute(
					"INSERT INTO posts (postid, forumid, author, posted, body) VALUES (?, ?, ?, ?, ?)",
					sqldb.Int(pid), sqldb.Int(int64(f)), sqldb.Int(int64(u)),
					sqldb.Int(3000000+pid), sqldb.Text(body(fmt.Sprintf("new post %d", pid), s.rng, 220)))
				return err
			},
			func() error {
				_, err := s.ex.Execute("SELECT COUNT(*) FROM posts WHERE forumid = ?", sqldb.Int(int64(f)))
				return err
			},
		}
		return runAll(q)
	case ReadMsg:
		q := []func() error{
			func() error {
				_, err := s.ex.Execute(
					"SELECT msgid, sender_id FROM privmsgs_to WHERE rcpt_id = ?", sqldb.Int(int64(u)))
				return err
			},
			func() error {
				mid := int64(1 + s.rng.Intn(s.cfg.Users*s.cfg.Msgs))
				_, err := s.ex.Execute(
					"SELECT subject, msgtext FROM privmsgs WHERE msgid = ?", sqldb.Int(mid))
				return err
			},
		}
		return runAll(q)
	case WriteMsg:
		rcpt := 1 + s.rng.Intn(s.cfg.Users)
		s.nextMID++
		mid := s.nextMID
		q := []func() error{
			func() error {
				_, err := s.ex.Execute("SELECT userid FROM users WHERE userid = ?", sqldb.Int(int64(rcpt)))
				return err
			},
			func() error {
				_, err := s.ex.Execute(
					"INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (?, ?, ?)",
					sqldb.Int(mid), sqldb.Int(int64(rcpt)), sqldb.Int(int64(u)))
				return err
			},
			func() error {
				_, err := s.ex.Execute(
					"INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (?, ?, ?)",
					sqldb.Int(mid), sqldb.Text(fmt.Sprintf("subj %d", mid)),
					sqldb.Text(body(fmt.Sprintf("message %d", mid), s.rng, 220)))
				return err
			},
		}
		return runAll(q)
	}
	return 0, fmt.Errorf("forum: unknown request kind %v", kind)
}

// Mix executes one request drawn from a browse-heavy distribution and
// reports its kind.
func (s *Sim) Mix() (RequestKind, int, error) {
	n := s.rng.Intn(100)
	var kind RequestKind
	switch {
	case n < 10:
		kind = Login
	case n < 50:
		kind = ReadPost
	case n < 70:
		kind = WritePost
	case n < 90:
		kind = ReadMsg
	default:
		kind = WriteMsg
	}
	q, err := s.Request(kind)
	return kind, q, err
}

func runAll(q []func() error) (int, error) {
	for i, fn := range q {
		if err := fn(); err != nil {
			return i, err
		}
	}
	return len(q), nil
}
