// Package trace synthesizes the sql.mit.edu-style query trace of §8 and
// the per-application query sets of the security evaluation. The real
// 126M-query MIT trace is private; what the paper's Figures 7 and 9 depend
// on is the *distribution of computation classes per column* (equality,
// order, search, sums, and operations CryptDB cannot support), which this
// generator reproduces: each column is assigned an operation profile and
// the generator emits queries exercising exactly that profile. See
// DESIGN.md §2.
package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/sqldb"
)

// Query is one trace query with bound parameters.
type Query struct {
	SQL    string
	Params []sqldb.Value
}

// App is one application (one database) in the trace: its schema (used
// tables only) and its query stream. UnusedTables/UnusedColumns account for
// schema never seen in queries (Figure 7's "complete schema" vs "used in
// query" split).
type App struct {
	Name          string
	Schema        []string
	Queries       []Query
	UnusedTables  int
	UnusedColumns int
}

// colClass is the operation profile of one column.
type colClass int

const (
	classNone   colClass = iota // projection only -> stays RND
	classDet                    // equality lookups -> DET
	classJoin                   // equi-join -> JOIN
	classOpe                    // range/order -> OPE
	classSearch                 // LIKE word search -> SEARCH
	classHom                    // SUM/increment -> HOM (Add onion)
	classPlain                  // bitwise/string/date ops -> needs plaintext
)

// Profile gives the column-class counts for one application. The named
// profiles below are taken from Figure 9.
type Profile struct {
	Name   string
	None   int // columns only inserted/fetched (stay RND)
	Det    int
	Join   int
	Ope    int
	Search int
	Hom    int
	Plain  int
}

// Total counts all considered columns.
func (p Profile) Total() int {
	return p.None + p.Det + p.Join + p.Ope + p.Search + p.Hom + p.Plain
}

// PaperProfiles returns per-application profiles matching the
// considered-column rows of Figure 9 (sensitive columns only; Det includes
// the paper's DET+JOIN column, Hom the needs-HOM column, etc.).
func PaperProfiles() []Profile {
	return []Profile{
		// name, none(RND), det, join, ope, search, hom, plain —
		// totals match Figure 9's considered-column counts.
		{Name: "phpBB", None: 20, Det: 0, Join: 1, Ope: 1, Search: 0, Hom: 1, Plain: 0},
		{Name: "HotCRP", None: 16, Det: 1, Join: 0, Ope: 2, Search: 1, Hom: 2, Plain: 0},
		{Name: "grad-apply", None: 93, Det: 4, Join: 2, Ope: 2, Search: 2, Hom: 0, Plain: 0},
		{Name: "OpenEMR", None: 525, Det: 8, Join: 4, Ope: 19, Search: 3, Hom: 0, Plain: 7},
		{Name: "MIT-6.02", None: 7, Det: 3, Join: 1, Ope: 2, Search: 0, Hom: 0, Plain: 0},
		{Name: "PHP-calendar", None: 3, Det: 3, Join: 1, Ope: 1, Search: 2, Hom: 0, Plain: 2},
	}
}

// TraceProfile returns the aggregate profile of the sql.mit.edu trace
// (Figure 9 "with in-proxy processing" row), scaled by factor (1.0 =
// 128,840 columns — far more than needed; benchmarks use ~0.01).
func TraceProfile(factor float64) Profile {
	s := func(n int) int {
		v := int(float64(n) * factor)
		if n > 0 && v == 0 {
			v = 1
		}
		return v
	}
	// 128,840 columns: 84,008 RND, 398 SEARCH-minenc, 35,350 DET,
	// 8,513 OPE, 571 plaintext; 1,016 need HOM and 1,135 need SEARCH
	// overall. HOM/SEARCH-needing columns largely remain at higher
	// MinEnc; we fold them into dedicated classes.
	return Profile{
		Name:   "sql.mit.edu",
		None:   s(84008 - 1016), // RND columns not needing HOM
		Hom:    s(1016),
		Search: s(1135),
		Det:    s(35350 - 1135), // DET minus the searched ones
		Join:   s(2000),         // part of the DET/JOIN population
		Ope:    s(8513),
		Plain:  s(571),
	}
}

// Generate builds one App from a profile: a schema holding its columns
// (packed into tables of up to 12 columns) and a query stream exercising
// each column per its class.
func Generate(p Profile, seed int64) App {
	rng := rand.New(rand.NewSource(seed))
	app := App{Name: p.Name}

	// Joins need a partner column; an odd join count folds one column
	// into the equality class (the paper buckets DET and JOIN together).
	if p.Join%2 == 1 {
		p.Join--
		p.Det++
	}

	type colSpec struct {
		table, name string
		class       colClass
		isText      bool
	}
	var cols []colSpec
	add := func(class colClass, n int, text bool) {
		for i := 0; i < n; i++ {
			cols = append(cols, colSpec{class: class, isText: text})
		}
	}
	add(classNone, p.None, true)
	add(classDet, p.Det, false)
	add(classJoin, p.Join, false)
	add(classOpe, p.Ope, false)
	add(classSearch, p.Search, true)
	add(classHom, p.Hom, false)
	add(classPlain, p.Plain, false)
	rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })

	// Pack into tables of up to 12 columns; each table gets a plain id
	// (row identifiers are not treated as sensitive here, so the
	// considered-for-encryption counts match the profile exactly).
	perTable := 12
	nTables := (len(cols) + perTable - 1) / perTable
	for t := 0; t < nTables; t++ {
		tname := fmt.Sprintf("t%d", t+1)
		ddl := fmt.Sprintf("CREATE TABLE %s (id INT PLAIN", tname)
		for i := t * perTable; i < (t+1)*perTable && i < len(cols); i++ {
			cols[i].table = tname
			cols[i].name = fmt.Sprintf("col%d", i)
			typ := "INT"
			if cols[i].isText {
				typ = "TEXT"
			}
			ddl += fmt.Sprintf(", %s %s", cols[i].name, typ)
		}
		ddl += ")"
		app.Schema = append(app.Schema, ddl)
	}

	// Query stream: several queries per column, per class. Join columns
	// pair up with each other.
	var joinCols []colSpec
	for i, c := range cols {
		switch c.class {
		case classNone:
			app.Queries = append(app.Queries, Query{
				SQL:    fmt.Sprintf("SELECT %s FROM %s WHERE id = ?", c.name, c.table),
				Params: []sqldb.Value{sqldb.Int(int64(i))},
			})
		case classDet:
			app.Queries = append(app.Queries, Query{
				SQL:    fmt.Sprintf("SELECT id FROM %s WHERE %s = ?", c.table, c.name),
				Params: []sqldb.Value{sqldb.Int(int64(i))},
			})
		case classJoin:
			joinCols = append(joinCols, c)
			if len(joinCols)%2 == 0 {
				a, b := joinCols[len(joinCols)-2], joinCols[len(joinCols)-1]
				app.Queries = append(app.Queries, Query{
					SQL: fmt.Sprintf("SELECT COUNT(*) FROM %s a JOIN %s b ON a.%s = b.%s",
						a.table, b.table, a.name, b.name),
				})
			}
		case classOpe:
			app.Queries = append(app.Queries, Query{
				SQL:    fmt.Sprintf("SELECT id FROM %s WHERE %s < ? LIMIT 5", c.table, c.name),
				Params: []sqldb.Value{sqldb.Int(int64(i))},
			})
		case classSearch:
			app.Queries = append(app.Queries, Query{
				SQL: fmt.Sprintf("SELECT id FROM %s WHERE %s LIKE '%%word%d%%'", c.table, c.name, i),
			})
		case classHom:
			app.Queries = append(app.Queries, Query{
				SQL: fmt.Sprintf("SELECT SUM(%s) FROM %s", c.name, c.table),
			})
		case classPlain:
			// One of the three plaintext-needing shapes of §8.2:
			// bitwise predicates, string manipulation, math in WHERE.
			switch i % 3 {
			case 0:
				app.Queries = append(app.Queries, Query{
					SQL: fmt.Sprintf("SELECT id FROM %s WHERE %s & 4 = 4", c.table, c.name),
				})
			case 1:
				app.Queries = append(app.Queries, Query{
					SQL: fmt.Sprintf("SELECT id FROM %s WHERE lower_case(%s) = 'x'", c.table, c.name),
				})
			default:
				app.Queries = append(app.Queries, Query{
					SQL: fmt.Sprintf("SELECT id FROM %s WHERE %s > id * 2 + 1", c.table, c.name),
				})
			}
		}
	}

	// Unused schema for Figure 7 accounting: the complete schema holds
	// roughly 9.7x more columns than the query trace touches.
	app.UnusedTables = nTables * 8
	app.UnusedColumns = len(cols) * 8
	return app
}

// GenerateTrace builds the multi-database trace: nDBs application databases
// whose aggregate column-class distribution matches the paper's trace row,
// plus Figure 7-style unused-schema accounting.
func GenerateTrace(nDBs int, factor float64, seed int64) []App {
	total := TraceProfile(factor)
	rng := rand.New(rand.NewSource(seed))
	apps := make([]App, 0, nDBs)
	remaining := total
	for i := 0; i < nDBs; i++ {
		last := i == nDBs-1
		take := func(rem *int) int {
			if last {
				v := *rem
				*rem = 0
				return v
			}
			share := *rem / (nDBs - i)
			// jitter for realism
			if share > 1 {
				share += rng.Intn(share) - share/2
			}
			if share > *rem {
				share = *rem
			}
			if share < 0 {
				share = 0
			}
			*rem -= share
			return share
		}
		p := Profile{
			Name:   fmt.Sprintf("db%04d", i+1),
			None:   take(&remaining.None),
			Det:    take(&remaining.Det),
			Join:   take(&remaining.Join),
			Ope:    take(&remaining.Ope),
			Search: take(&remaining.Search),
			Hom:    take(&remaining.Hom),
			Plain:  take(&remaining.Plain),
		}
		if p.Total() == 0 {
			p.None = 1
		}
		apps = append(apps, Generate(p, seed+int64(i)*17))
	}
	return apps
}

// SchemaStats aggregates Figure 7-style counts over a set of apps.
type SchemaStats struct {
	Databases, Tables, Columns             int // complete schema
	UsedDatabases, UsedTables, UsedColumns int // seen in queries
}

// Stats computes schema statistics for Figure 7.
func Stats(apps []App) SchemaStats {
	var s SchemaStats
	for _, a := range apps {
		s.Databases++
		s.UsedDatabases++
		usedTables := len(a.Schema)
		usedCols := 0
		for _, q := range a.Queries {
			_ = q
		}
		// Count declared columns from the DDL strings: one "col" per
		// ", colN " occurrence plus the id column.
		for _, ddl := range a.Schema {
			usedCols += countCols(ddl)
		}
		s.UsedTables += usedTables
		s.UsedColumns += usedCols
		s.Tables += usedTables + a.UnusedTables
		s.Columns += usedCols + a.UnusedColumns
	}
	// Unused databases exist too: the paper sees 8,548 databases but
	// only 1,193 in queries (~7.2x).
	s.Databases = s.UsedDatabases * 7
	return s
}

func countCols(ddl string) int {
	n := 0
	for i := 0; i+1 < len(ddl); i++ {
		if ddl[i] == ',' {
			n++
		}
	}
	return n + 1 // id column plus one per comma
}
