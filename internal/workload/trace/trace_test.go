package trace

import (
	"strings"
	"testing"
)

func TestGenerateMatchesProfile(t *testing.T) {
	p := Profile{Name: "x", None: 5, Det: 3, Join: 2, Ope: 2, Search: 1, Hom: 1, Plain: 1}
	app := Generate(p, 9)
	if len(app.Schema) == 0 || len(app.Queries) == 0 {
		t.Fatal("empty app")
	}
	// Every query parses against some table of the schema (syntactic
	// sanity; semantics are covered by the analysis tests).
	for _, q := range app.Queries {
		if !strings.HasPrefix(q.SQL, "SELECT") {
			t.Fatalf("unexpected query %q", q.SQL)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := PaperProfiles()[0]
	a := Generate(p, 7)
	b := Generate(p, 7)
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("non-deterministic query count")
	}
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("query %d differs: %q vs %q", i, a.Queries[i].SQL, b.Queries[i].SQL)
		}
	}
}

func TestOddJoinFolded(t *testing.T) {
	p := Profile{Name: "x", Join: 3, Det: 1}
	app := Generate(p, 1)
	joins := 0
	for _, q := range app.Queries {
		if strings.Contains(q.SQL, "JOIN") {
			joins++
		}
	}
	if joins != 1 { // 2 join columns -> 1 join query; odd one folded to Det
		t.Fatalf("join queries = %d, want 1", joins)
	}
}

func TestGenerateTraceDistributes(t *testing.T) {
	apps := GenerateTrace(6, 0.002, 11)
	if len(apps) != 6 {
		t.Fatalf("apps = %d", len(apps))
	}
	total := 0
	for _, a := range apps {
		for _, ddl := range a.Schema {
			total += countCols(ddl)
		}
	}
	want := TraceProfile(0.002)
	// Column counts match the scaled profile to within the id columns
	// added per table.
	if total < want.Total() {
		t.Fatalf("total columns %d < profile total %d", total, want.Total())
	}
}

func TestPaperProfileTotals(t *testing.T) {
	// Profile totals must equal Figure 9's considered-column counts.
	want := map[string]int{
		"phpBB": 23, "HotCRP": 22, "grad-apply": 103,
		"OpenEMR": 566, "MIT-6.02": 13, "PHP-calendar": 12,
	}
	for _, p := range PaperProfiles() {
		if p.Total() != want[p.Name] {
			t.Errorf("%s total = %d, want %d", p.Name, p.Total(), want[p.Name])
		}
	}
}

func TestTraceProfileScaling(t *testing.T) {
	full := TraceProfile(1.0)
	if full.Total() < 120000 || full.Total() > 135000 {
		t.Fatalf("full profile total = %d, want ~128,840", full.Total())
	}
	small := TraceProfile(0.001)
	if small.Total() == 0 {
		t.Fatal("scaled profile empty")
	}
	// Every nonzero class survives scaling (minimum 1).
	if small.Plain == 0 || small.Hom == 0 || small.Search == 0 {
		t.Fatalf("classes lost in scaling: %+v", small)
	}
}
