package workload

import (
	"testing"

	"repro/internal/sqldb"
)

func TestPlainDBExecutor(t *testing.T) {
	ex := PlainDB{DB: sqldb.New()}
	if _, err := ex.Execute("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute("INSERT INTO t (a) VALUES (?)", sqldb.Int(5)); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Execute("SELECT a FROM t")
	if err != nil || res.Rows[0][0].I != 5 {
		t.Fatalf("rows = %v, err = %v", res, err)
	}
}

func TestPassthroughRoundTrips(t *testing.T) {
	// The pass-through proxy re-serializes and re-parses every
	// statement; semantics must be unchanged.
	ex := Passthrough{DB: sqldb.New()}
	stmts := []string{
		"CREATE TABLE t (a INT, b TEXT)",
		"INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, 'y')",
		"UPDATE t SET b = 'z' WHERE a = 2",
		"DELETE FROM t WHERE a = 99",
	}
	for _, s := range stmts {
		if _, err := ex.Execute(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	res, err := ex.Execute("SELECT b FROM t WHERE a = 1")
	if err != nil || res.Rows[0][0].S != "it's" {
		t.Fatalf("rows = %v, err = %v", res, err)
	}
	res, err = ex.Execute("SELECT b FROM t WHERE a = ?", sqldb.Int(2))
	if err != nil || res.Rows[0][0].S != "z" {
		t.Fatalf("rows = %v, err = %v", res, err)
	}
}

func TestPassthroughRejectsBadSQL(t *testing.T) {
	ex := Passthrough{DB: sqldb.New()}
	if _, err := ex.Execute("NOT SQL AT ALL"); err == nil {
		t.Fatal("want parse error")
	}
}
