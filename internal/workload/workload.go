// Package workload defines the common execution interface shared by the
// paper's three measured configurations — unmodified DBMS, DBMS behind a
// plain pass-through proxy, and CryptDB — plus adapters for the first two.
package workload

import (
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// Executor runs one SQL statement; sqldb.DB (via PlainDB), proxy.Proxy,
// mp.Manager and strawman.Proxy all satisfy it.
type Executor interface {
	Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error)
}

// PlainDB adapts a raw sqldb.DB to Executor: the paper's "MySQL"
// configuration.
type PlainDB struct{ DB *sqldb.DB }

// Execute parses and runs sql directly against the DBMS.
func (p PlainDB) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return p.DB.ExecSQL(sql, params...)
}

// Passthrough models the paper's "MySQL+proxy" configuration (Figure 14):
// queries are parsed, shuttled and re-issued — the fixed cost of proxying
// without any cryptography.
type Passthrough struct{ DB *sqldb.DB }

// Execute parses, re-serializes, re-parses and executes — approximating the
// MySQL-proxy byte-shuttling and parsing overhead.
func (p Passthrough) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	st2, err := sqlparser.Parse(st.String())
	if err != nil {
		return nil, err
	}
	return p.DB.Exec(st2, params...)
}
