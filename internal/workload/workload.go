// Package workload defines the common execution interface shared by the
// paper's three measured configurations — unmodified DBMS, DBMS behind a
// plain pass-through proxy, and CryptDB — plus adapters for the first two.
package workload

import (
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// Executor runs one SQL statement; sqldb.DB (via PlainDB), proxy.Proxy,
// mp.Manager and strawman.Proxy all satisfy it.
type Executor interface {
	Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error)
}

// PlainDB adapts a raw sqldb.DB to Executor: the paper's "MySQL"
// configuration.
type PlainDB struct{ DB *sqldb.DB }

// Execute parses and runs sql directly against the DBMS.
func (p PlainDB) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return p.DB.ExecSQL(sql, params...)
}

// Passthrough models the paper's "MySQL+proxy" configuration (Figure 14):
// queries are parsed, shuttled and re-issued — the fixed cost of proxying
// without any cryptography.
type Passthrough struct{ DB *sqldb.DB }

// Execute parses, re-serializes, re-parses and executes — approximating the
// MySQL-proxy byte-shuttling and parsing overhead.
func (p Passthrough) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	st2, err := sqlparser.Parse(st.String())
	if err != nil {
		return nil, err
	}
	return p.DB.Exec(st2, params...)
}

// RangeTableKey scatters row ordinal i over a 2^30 key domain; the range
// benchmarks and the cryptdb-bench rangescan figure share it so both
// measure the same data distribution.
func RangeTableKey(i int) int64 { return int64(uint32(i) * 2654435761 % (1 << 30)) }

// LoadRangeTable creates table r(k INT, v INT) with rows scattered keys,
// optionally under the default (hash + ordered) index on k. Rows load
// through pre-built multi-row INSERT ASTs so setup is not parser-bound.
func LoadRangeTable(db *sqldb.DB, rows int, indexed bool) error {
	if _, err := db.ExecSQL("CREATE TABLE r (k INT, v INT)"); err != nil {
		return err
	}
	if indexed {
		if _, err := db.ExecSQL("CREATE INDEX rk ON r (k)"); err != nil {
			return err
		}
	}
	const batch = 1000
	for base := 0; base < rows; base += batch {
		n := batch
		if rows-base < n {
			n = rows - base
		}
		st := &sqlparser.InsertStmt{Table: "r", Columns: []string{"k", "v"}}
		for i := 0; i < n; i++ {
			st.Rows = append(st.Rows, []sqlparser.Expr{
				&sqlparser.IntLit{V: RangeTableKey(base + i)},
				&sqlparser.IntLit{V: int64(base + i)},
			})
		}
		if _, err := db.Exec(st); err != nil {
			return err
		}
	}
	return nil
}
