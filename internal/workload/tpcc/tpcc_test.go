package tpcc

import (
	"testing"

	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

var smallCfg = Config{Warehouses: 1, Districts: 1, Customers: 5, Items: 10, Orders: 6, Seed: 1}

func TestSchemaColumnCount(t *testing.T) {
	total := 0
	for _, ddl := range Schema() {
		st, err := sqlparser.Parse(ddl)
		if err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
		if ct, ok := st.(*sqlparser.CreateTableStmt); ok {
			total += len(ct.Cols)
		}
	}
	if total != ColumnCount {
		t.Fatalf("schema has %d columns, want %d (the paper's count)", total, ColumnCount)
	}
}

func TestLoadAndMixPlain(t *testing.T) {
	db := sqldb.New()
	ex := workload.PlainDB{DB: db}
	if err := Load(ex, smallCfg); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(smallCfg)
	for i := 0; i < 200; i++ {
		class, sql, params := g.Next()
		if _, err := ex.Execute(sql, params...); err != nil {
			t.Fatalf("%v query %q: %v", class, sql, err)
		}
	}
}

func TestLoadAndMixEncrypted(t *testing.T) {
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(p, smallCfg); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(smallCfg)
	for i := 0; i < 100; i++ {
		class, sql, params := g.Next()
		if _, err := p.Execute(sql, params...); err != nil {
			t.Fatalf("%v query %q: %v", class, sql, err)
		}
	}
}

func TestEncryptedMatchesPlain(t *testing.T) {
	// The same deterministic mix must return the same SUM results on
	// plaintext and encrypted databases.
	plainDB := sqldb.New()
	plain := workload.PlainDB{DB: plainDB}
	if err := Load(plain, smallCfg); err != nil {
		t.Fatal(err)
	}
	encDB := sqldb.New()
	p, err := proxy.New(encDB, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(p, smallCfg); err != nil {
		t.Fatal(err)
	}

	g1 := NewGenerator(smallCfg)
	g2 := NewGenerator(smallCfg)
	for i := 0; i < 60; i++ {
		c1, sql1, p1 := g1.Next()
		_, sql2, p2 := g2.Next()
		r1, err := plain.Execute(sql1, p1...)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := p.Execute(sql2, p2...)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("%v: plain %d rows, encrypted %d rows (%s)", c1, len(r1.Rows), len(r2.Rows), sql1)
		}
		for ri := range r1.Rows {
			for ci := range r1.Rows[ri] {
				v1, v2 := r1.Rows[ri][ci], r2.Rows[ri][ci]
				if v1.IsNull() && v2.IsNull() {
					continue
				}
				if !v1.Equal(v2) {
					t.Fatalf("%v: row %d col %d: plain %v encrypted %v (%s)", c1, ri, ci, v1, v2, sql1)
				}
			}
		}
	}
}

func TestForClassCoversAll(t *testing.T) {
	g := NewGenerator(smallCfg)
	for _, c := range Classes() {
		sql, _ := g.ForClass(c)
		if sql == "" {
			t.Fatalf("class %v produced no query", c)
		}
	}
}
