// Package tpcc provides the TPC-C-derived workload of §8.4.1: the standard
// nine-table, 92-column schema (every column encrypted in single-principal
// mode, per the paper) with a loader and a query-mix generator producing
// the eight query classes of Figures 11 and 12: equality selects, joins,
// ranges, sums, deletes, inserts, constant updates, and increment updates.
package tpcc

import (
	"fmt"
	"math/rand"

	"repro/internal/sqldb"
	"repro/internal/workload"
)

// Config sizes the generated database. Zero fields take defaults scaled for
// in-memory runs.
type Config struct {
	Warehouses int
	Districts  int // per warehouse
	Customers  int // per district
	Items      int
	Orders     int // per district
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.Warehouses == 0 {
		c.Warehouses = 1
	}
	if c.Districts == 0 {
		c.Districts = 2
	}
	if c.Customers == 0 {
		c.Customers = 20
	}
	if c.Items == 0 {
		c.Items = 50
	}
	if c.Orders == 0 {
		c.Orders = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Schema returns the DDL (tables + indexes) for the 92-column TPC-C schema.
func Schema() []string {
	return []string{
		`CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name TEXT, w_street_1 TEXT, w_street_2 TEXT,
			w_city TEXT, w_state TEXT, w_zip TEXT, w_tax INT, w_ytd INT)`,
		`CREATE TABLE district (d_id INT, d_w_id INT, d_name TEXT, d_street_1 TEXT, d_street_2 TEXT,
			d_city TEXT, d_state TEXT, d_zip TEXT, d_tax INT, d_ytd INT, d_next_o_id INT)`,
		`CREATE TABLE customer (c_id INT, c_d_id INT, c_w_id INT, c_first TEXT, c_middle TEXT, c_last TEXT,
			c_street_1 TEXT, c_street_2 TEXT, c_city TEXT, c_state TEXT, c_zip TEXT, c_phone TEXT,
			c_since INT, c_credit TEXT, c_credit_lim INT, c_discount INT, c_balance INT,
			c_ytd_payment INT, c_payment_cnt INT, c_delivery_cnt INT, c_data TEXT)`,
		`CREATE TABLE history (h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id INT, h_w_id INT,
			h_date INT, h_amount INT, h_data TEXT)`,
		`CREATE TABLE new_order (no_o_id INT, no_d_id INT, no_w_id INT)`,
		`CREATE TABLE orders (o_id INT, o_d_id INT, o_w_id INT, o_c_id INT, o_entry_d INT,
			o_carrier_id INT, o_ol_cnt INT, o_all_local INT)`,
		`CREATE TABLE order_line (ol_o_id INT, ol_d_id INT, ol_w_id INT, ol_number INT, ol_i_id INT,
			ol_supply_w_id INT, ol_delivery_d INT, ol_quantity INT, ol_amount INT, ol_dist_info TEXT)`,
		`CREATE TABLE item (i_id INT PRIMARY KEY, i_im_id INT, i_name TEXT, i_price INT, i_data TEXT)`,
		`CREATE TABLE stock (s_i_id INT, s_w_id INT, s_quantity INT,
			s_dist_01 TEXT, s_dist_02 TEXT, s_dist_03 TEXT, s_dist_04 TEXT, s_dist_05 TEXT,
			s_dist_06 TEXT, s_dist_07 TEXT, s_dist_08 TEXT, s_dist_09 TEXT, s_dist_10 TEXT,
			s_ytd INT, s_order_cnt INT, s_remote_cnt INT, s_data TEXT)`,
		"CREATE INDEX idx_customer_id ON customer (c_id)",
		"CREATE INDEX idx_orders_id ON orders (o_id)",
		"CREATE INDEX idx_orders_cid ON orders (o_c_id)",
		"CREATE INDEX idx_ol_oid ON order_line (ol_o_id)",
		"CREATE INDEX idx_no_oid ON new_order (no_o_id)",
		"CREATE INDEX idx_stock_iid ON stock (s_i_id)",
		"CREATE INDEX idx_district_id ON district (d_id)",
	}
}

// ColumnCount is the number of data columns in the schema (the paper's 92).
const ColumnCount = 92

// Load creates the schema and populates it.
func Load(ex workload.Executor, cfg Config) error {
	cfg = cfg.withDefaults()
	for _, ddl := range Schema() {
		if _, err := ex.Execute(ddl); err != nil {
			return fmt.Errorf("tpcc: %w", err)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for w := 1; w <= cfg.Warehouses; w++ {
		if _, err := ex.Execute(
			"INSERT INTO warehouse (w_id, w_name, w_street_1, w_street_2, w_city, w_state, w_zip, w_tax, w_ytd) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
			sqldb.Int(int64(w)), sqldb.Text(fmt.Sprintf("wh%d", w)), sqldb.Text(street(rng)), sqldb.Text(street(rng)),
			sqldb.Text(city(rng)), sqldb.Text("MA"), sqldb.Text("021381234"), sqldb.Int(int64(rng.Intn(2000))), sqldb.Int(0)); err != nil {
			return err
		}
		for d := 1; d <= cfg.Districts; d++ {
			if _, err := ex.Execute(
				"INSERT INTO district (d_id, d_w_id, d_name, d_street_1, d_street_2, d_city, d_state, d_zip, d_tax, d_ytd, d_next_o_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
				sqldb.Int(did(w, d)), sqldb.Int(int64(w)), sqldb.Text(fmt.Sprintf("district-%d", d)), sqldb.Text(street(rng)), sqldb.Text(street(rng)),
				sqldb.Text(city(rng)), sqldb.Text("MA"), sqldb.Text("021381234"), sqldb.Int(int64(rng.Intn(2000))), sqldb.Int(0),
				sqldb.Int(int64(cfg.Orders+1))); err != nil {
				return err
			}
			for c := 1; c <= cfg.Customers; c++ {
				id := cid(w, d, c)
				if _, err := ex.Execute(
					"INSERT INTO customer (c_id, c_d_id, c_w_id, c_first, c_middle, c_last, c_street_1, c_street_2, c_city, c_state, c_zip, c_phone, c_since, c_credit, c_credit_lim, c_discount, c_balance, c_ytd_payment, c_payment_cnt, c_delivery_cnt, c_data) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
					sqldb.Int(id), sqldb.Int(did(w, d)), sqldb.Int(int64(w)),
					sqldb.Text(fmt.Sprintf("First%d", c)), sqldb.Text("OE"), sqldb.Text(lastName(c)),
					sqldb.Text("s1"), sqldb.Text("s2"), sqldb.Text("city"), sqldb.Text("st"), sqldb.Text("12345"),
					sqldb.Text("555-0100"), sqldb.Int(1000000), sqldb.Text("GC"), sqldb.Int(5000000),
					sqldb.Int(int64(rng.Intn(5000))), sqldb.Int(int64(rng.Intn(100000))),
					sqldb.Int(0), sqldb.Int(0), sqldb.Int(0), sqldb.Text(filler(rng, 300))); err != nil {
					return err
				}
			}
			for o := 1; o <= cfg.Orders; o++ {
				oid := ordID(w, d, o)
				custID := cid(w, d, 1+rng.Intn(cfg.Customers))
				nLines := 3
				if _, err := ex.Execute(
					"INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt, o_all_local) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
					sqldb.Int(oid), sqldb.Int(did(w, d)), sqldb.Int(int64(w)), sqldb.Int(custID),
					sqldb.Int(1000000), sqldb.Int(int64(rng.Intn(10))), sqldb.Int(int64(nLines)), sqldb.Int(1)); err != nil {
					return err
				}
				for l := 1; l <= nLines; l++ {
					if _, err := ex.Execute(
						"INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id, ol_supply_w_id, ol_delivery_d, ol_quantity, ol_amount, ol_dist_info) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
						sqldb.Int(oid), sqldb.Int(did(w, d)), sqldb.Int(int64(w)), sqldb.Int(int64(l)),
						sqldb.Int(int64(1+rng.Intn(cfg.Items))), sqldb.Int(int64(w)), sqldb.Int(1000000),
						sqldb.Int(int64(1+rng.Intn(10))), sqldb.Int(int64(rng.Intn(10000))), sqldb.Text(filler(rng, 24))); err != nil {
						return err
					}
				}
				if o > cfg.Orders*2/3 { // last third undelivered
					if _, err := ex.Execute(
						"INSERT INTO new_order (no_o_id, no_d_id, no_w_id) VALUES (?, ?, ?)",
						sqldb.Int(oid), sqldb.Int(did(w, d)), sqldb.Int(int64(w))); err != nil {
						return err
					}
				}
			}
		}
	}
	for i := 1; i <= cfg.Items; i++ {
		if _, err := ex.Execute(
			"INSERT INTO item (i_id, i_im_id, i_name, i_price, i_data) VALUES (?, ?, ?, ?, ?)",
			sqldb.Int(int64(i)), sqldb.Int(int64(rng.Intn(10000))), sqldb.Text(fmt.Sprintf("item-%d", i)),
			sqldb.Int(int64(100+rng.Intn(9900))), sqldb.Text(filler(rng, 35))); err != nil {
			return err
		}
		for w := 1; w <= cfg.Warehouses; w++ {
			if _, err := ex.Execute(
				"INSERT INTO stock (s_i_id, s_w_id, s_quantity, s_dist_01, s_dist_02, s_dist_03, s_dist_04, s_dist_05, s_dist_06, s_dist_07, s_dist_08, s_dist_09, s_dist_10, s_ytd, s_order_cnt, s_remote_cnt, s_data) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
				sqldb.Int(int64(i)), sqldb.Int(int64(w)), sqldb.Int(int64(10+rng.Intn(90))),
				sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)),
				sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)), sqldb.Text(filler(rng, 24)),
				sqldb.Int(0), sqldb.Int(0), sqldb.Int(0), sqldb.Text(filler(rng, 40))); err != nil {
				return err
			}
		}
	}
	return nil
}

func did(w, d int) int64      { return int64(w*100 + d) }
func cid(w, d, c int) int64   { return int64(w*100000 + d*1000 + c) }
func ordID(w, d, o int) int64 { return int64(w*1000000 + d*10000 + o) }

// filler generates TPC-C-style random alphanumeric padding so ciphertext
// expansion ratios are measured against realistic row sizes (c_data is
// 300-500 chars in the standard).
func filler(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 "
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

func street(rng *rand.Rand) string { return fmt.Sprintf("%d main street", 1+rng.Intn(999)) }
func city(rng *rand.Rand) string   { return "cambridge" }

func lastName(c int) string {
	syll := []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	return syll[c%10] + syll[(c/10)%10] + syll[(c/100)%10]
}

// Class identifies one of the Figure 11 query classes.
type Class int

// The eight classes of Figures 11 and 12.
const (
	Equality Class = iota
	Join
	Range
	Sum
	Delete
	Insert
	UpdSet
	UpdInc
	numClasses
)

// Classes lists all classes in display order.
func Classes() []Class {
	return []Class{Equality, Join, Range, Sum, Delete, Insert, UpdSet, UpdInc}
}

func (c Class) String() string {
	switch c {
	case Equality:
		return "Equality"
	case Join:
		return "Join"
	case Range:
		return "Range"
	case Sum:
		return "Sum"
	case Delete:
		return "Delete"
	case Insert:
		return "Insert"
	case UpdSet:
		return "Upd. set"
	case UpdInc:
		return "Upd. inc"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Generator produces a TPC-C-like query mix.
type Generator struct {
	rng     *rand.Rand
	cfg     Config
	nextIns int64
}

// NewGenerator builds a generator matching a loaded Config.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{rng: rand.New(rand.NewSource(cfg.Seed + 7)), cfg: cfg, nextIns: 4_000_000}
}

// mix approximates the TPC-C transaction profile in terms of the Figure 11
// classes (weights sum to 100).
var mix = []struct {
	class  Class
	weight int
}{
	{Equality, 35}, {Join, 14}, {Range, 6}, {Sum, 5},
	{Delete, 3}, {Insert, 12}, {UpdSet, 13}, {UpdInc, 12},
}

// Next returns the next query in the mix.
func (g *Generator) Next() (Class, string, []sqldb.Value) {
	n := g.rng.Intn(100)
	acc := 0
	for _, m := range mix {
		acc += m.weight
		if n < acc {
			sql, params := g.ForClass(m.class)
			return m.class, sql, params
		}
	}
	sql, params := g.ForClass(Equality)
	return Equality, sql, params
}

// ForClass returns a query of the given class with fresh parameters.
func (g *Generator) ForClass(c Class) (string, []sqldb.Value) {
	w := 1 + g.rng.Intn(g.cfg.Warehouses)
	d := 1 + g.rng.Intn(g.cfg.Districts)
	cu := 1 + g.rng.Intn(g.cfg.Customers)
	o := 1 + g.rng.Intn(g.cfg.Orders)
	switch c {
	case Equality:
		return "SELECT c_first, c_last, c_balance FROM customer WHERE c_id = ?",
			[]sqldb.Value{sqldb.Int(cid(w, d, cu))}
	case Join:
		return "SELECT o.o_id, c.c_last FROM orders o JOIN customer c ON o.o_c_id = c.c_id WHERE o.o_id = ?",
			[]sqldb.Value{sqldb.Int(ordID(w, d, o))}
	case Range:
		return "SELECT s_i_id FROM stock WHERE s_quantity < ?",
			[]sqldb.Value{sqldb.Int(int64(10 + g.rng.Intn(20)))}
	case Sum:
		return "SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = ?",
			[]sqldb.Value{sqldb.Int(ordID(w, d, o))}
	case Delete:
		return "DELETE FROM new_order WHERE no_o_id = ?",
			[]sqldb.Value{sqldb.Int(ordID(w, d, o))}
	case Insert:
		g.nextIns++
		return "INSERT INTO history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date, h_amount, h_data) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
			[]sqldb.Value{sqldb.Int(cid(w, d, cu)), sqldb.Int(did(w, d)), sqldb.Int(int64(w)),
				sqldb.Int(did(w, d)), sqldb.Int(int64(w)), sqldb.Int(g.nextIns),
				sqldb.Int(int64(g.rng.Intn(10000))), sqldb.Text(filler(g.rng, 20))}
	case UpdSet:
		return "UPDATE customer SET c_credit = ?, c_data = ? WHERE c_id = ?",
			[]sqldb.Value{sqldb.Text("BC"), sqldb.Text(filler(g.rng, 280)), sqldb.Int(cid(w, d, cu))}
	case UpdInc:
		return "UPDATE district SET d_ytd = d_ytd + ? WHERE d_id = ?",
			[]sqldb.Value{sqldb.Int(int64(1 + g.rng.Intn(5000))), sqldb.Int(did(w, d))}
	}
	return g.ForClass(Equality)
}
