package analysis

import (
	"testing"

	"repro/internal/sqldb"
	"repro/internal/workload/tpcc"
	"repro/internal/workload/trace"
)

// TestAnalyzeTPCC runs the actual TPC-C query classes through the analysis
// pipeline (the Figure 9 TPC-C row).
func TestAnalyzeTPCC(t *testing.T) {
	app := trace.App{Name: "TPC-C", Schema: tpcc.Schema()}
	g := tpcc.NewGenerator(tpcc.Config{Seed: 1})
	for _, c := range tpcc.Classes() {
		sql, params := g.ForClass(c)
		app.Queries = append(app.Queries, trace.Query{SQL: sql, Params: params})
	}
	row, err := AnalyzeApp(app)
	if err != nil {
		t.Fatal(err)
	}
	if row.ConsiderEnc != tpcc.ColumnCount {
		t.Fatalf("considered = %d, want %d", row.ConsiderEnc, tpcc.ColumnCount)
	}
	if row.NeedsPlain != 0 {
		t.Fatalf("TPC-C should be fully supported, %d columns need plaintext", row.NeedsPlain)
	}
	// The mix sums ol_amount and increments d_ytd: both use HOM.
	if row.NeedsHOM < 2 {
		t.Fatalf("needs-HOM = %d, want >= 2", row.NeedsHOM)
	}
	// Range on s_quantity: at least one OPE column.
	if row.AtOPE < 1 {
		t.Fatalf("at-OPE = %d, want >= 1", row.AtOPE)
	}
	// Equality and join lookups produce DET/JOIN columns.
	if row.AtDET < 3 {
		t.Fatalf("at-DET = %d, want >= 3", row.AtDET)
	}
	// Most columns are only inserted/fetched: RND dominates (paper: 65/92).
	if row.AtRND <= row.AtDET+row.AtOPE {
		t.Fatalf("RND (%d) should dominate DET (%d) + OPE (%d)", row.AtRND, row.AtDET, row.AtOPE)
	}
}

// TestSummarizeBuckets checks the MinEnc bucketing logic directly.
func TestSummarizeBuckets(t *testing.T) {
	_ = sqldb.Value{} // keep import for symmetry with sibling tests
	rows, err := AnalyzeApps([]trace.App{trace.Generate(trace.Profile{
		Name: "tiny", None: 2, Det: 1, Ope: 1, Search: 1, Hom: 1, Plain: 1,
	}, 3)})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ConsiderEnc != 7 || r.NeedsPlain != 1 || r.AtDET != 1 || r.AtOPE != 1 || r.AtSEARCH != 1 {
		t.Fatalf("row = %+v", r)
	}
	agg := Aggregate("agg", rows)
	if agg.ConsiderEnc != r.ConsiderEnc {
		t.Fatalf("aggregate mismatch: %+v", agg)
	}
}
