// Package analysis reproduces the paper's functional and security analyses
// (§8.2, §8.3): it feeds application schemas and query sets through a
// CryptDB proxy in training mode and tabulates, per column, whether CryptDB
// can support the queries, which onions they require, and the steady-state
// MinEnc level — the machinery behind Figures 7 and 9.
package analysis

import (
	"fmt"

	"repro/internal/onion"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/workload/trace"
)

// Fig9Row is one row of Figure 9.
type Fig9Row struct {
	App           string
	TotalCols     int
	ConsiderEnc   int
	NeedsPlain    int
	NeedsHOM      int
	NeedsSEARCH   int
	AtRND         int
	AtSEARCH      int
	AtDET         int
	AtOPE         int
	HighSensitive int // columns at RND/HOM among considered
}

// AnalyzeApp runs one app's queries through a training-mode proxy and
// summarizes the steady-state onion levels.
func AnalyzeApp(app trace.App) (Fig9Row, error) {
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 256, Training: true})
	if err != nil {
		return Fig9Row{}, err
	}
	for _, ddl := range app.Schema {
		if _, err := p.Execute(ddl); err != nil {
			return Fig9Row{}, fmt.Errorf("analysis: %s schema: %w", app.Name, err)
		}
	}
	for _, q := range app.Queries {
		// Training mode records adjustments and warnings; execution
		// errors beyond analysis are not expected.
		if _, err := p.Execute(q.SQL, q.Params...); err != nil {
			return Fig9Row{}, fmt.Errorf("analysis: %s query %q: %w", app.Name, q.SQL, err)
		}
	}
	row := Summarize(p.Report())
	row.App = app.Name
	return row, nil
}

// Summarize tabulates column reports into a Figure 9 row.
func Summarize(reports []proxy.ColumnReport) Fig9Row {
	var row Fig9Row
	for _, r := range reports {
		row.TotalCols++
		if r.Plain {
			continue
		}
		row.ConsiderEnc++
		if r.NeedsPlaintext {
			row.NeedsPlain++
			continue
		}
		if r.NeedsHOM {
			row.NeedsHOM++
		}
		if r.NeedsSEARCH {
			row.NeedsSEARCH++
		}
		switch r.MinEnc {
		case onion.RND, onion.HOM:
			row.AtRND++
			row.HighSensitive++
		case onion.SEARCH:
			row.AtSEARCH++
		case onion.DET, onion.JOIN:
			row.AtDET++
		case onion.OPE, onion.OPEJOIN:
			row.AtOPE++
		}
	}
	return row
}

// AnalyzeApps maps AnalyzeApp over a set of applications.
func AnalyzeApps(apps []trace.App) ([]Fig9Row, error) {
	rows := make([]Fig9Row, 0, len(apps))
	for _, a := range apps {
		r, err := AnalyzeApp(a)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Aggregate sums rows into one (the trace row of Figure 9).
func Aggregate(name string, rows []Fig9Row) Fig9Row {
	out := Fig9Row{App: name}
	for _, r := range rows {
		out.TotalCols += r.TotalCols
		out.ConsiderEnc += r.ConsiderEnc
		out.NeedsPlain += r.NeedsPlain
		out.NeedsHOM += r.NeedsHOM
		out.NeedsSEARCH += r.NeedsSEARCH
		out.AtRND += r.AtRND
		out.AtSEARCH += r.AtSEARCH
		out.AtDET += r.AtDET
		out.AtOPE += r.AtOPE
		out.HighSensitive += r.HighSensitive
	}
	return out
}
