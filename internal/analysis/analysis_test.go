package analysis

import (
	"testing"

	"repro/internal/workload/trace"
)

func TestAnalyzePaperApps(t *testing.T) {
	for _, prof := range trace.PaperProfiles() {
		app := trace.Generate(prof, 42)
		row, err := AnalyzeApp(app)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if row.NeedsPlain != prof.Plain {
			t.Errorf("%s: needs-plaintext = %d, want %d", prof.Name, row.NeedsPlain, prof.Plain)
		}
		if row.NeedsHOM != prof.Hom {
			t.Errorf("%s: needs-HOM = %d, want %d", prof.Name, row.NeedsHOM, prof.Hom)
		}
		if row.NeedsSEARCH != prof.Search {
			t.Errorf("%s: needs-SEARCH = %d, want %d", prof.Name, row.NeedsSEARCH, prof.Search)
		}
		if row.AtOPE != prof.Ope {
			t.Errorf("%s: at-OPE = %d, want %d", prof.Name, row.AtOPE, prof.Ope)
		}
		// DET bucket includes equality and join columns.
		if row.AtDET != prof.Det+prof.Join {
			t.Errorf("%s: at-DET = %d, want %d", prof.Name, row.AtDET, prof.Det+prof.Join)
		}
		// RND bucket: untouched columns + HOM-only columns, plus the
		// per-table plain-free id columns that only see equality...
		// ids are used for equality lookups, so they land in DET; the
		// remaining RND count is None + Hom.
		if row.AtRND < prof.None {
			t.Errorf("%s: at-RND = %d, want >= %d", prof.Name, row.AtRND, prof.None)
		}
	}
}

func TestAnalyzeTraceAggregate(t *testing.T) {
	apps := trace.GenerateTrace(8, 0.002, 7)
	rows, err := AnalyzeApps(apps)
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregate("trace", rows)
	if agg.ConsiderEnc == 0 {
		t.Fatal("no columns analyzed")
	}
	// Shape checks mirroring the paper: the overwhelming majority of
	// columns are supported, most sit at RND, DET is the second-largest
	// bucket, OPE is the smallest of the three.
	if frac(agg.NeedsPlain, agg.ConsiderEnc) > 0.05 {
		t.Errorf("needs-plaintext fraction %.3f too high", frac(agg.NeedsPlain, agg.ConsiderEnc))
	}
	if agg.AtRND <= agg.AtDET || agg.AtDET <= agg.AtOPE {
		t.Errorf("bucket ordering RND(%d) > DET(%d) > OPE(%d) violated",
			agg.AtRND, agg.AtDET, agg.AtOPE)
	}
}

func TestTraceSchemaStats(t *testing.T) {
	apps := trace.GenerateTrace(5, 0.001, 3)
	s := trace.Stats(apps)
	if s.UsedColumns == 0 || s.Columns <= s.UsedColumns {
		t.Fatalf("stats = %+v", s)
	}
	if s.Databases <= s.UsedDatabases {
		t.Fatalf("stats = %+v", s)
	}
}

func frac(a, b int) float64 { return float64(a) / float64(b) }
