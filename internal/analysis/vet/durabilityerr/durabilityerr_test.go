package durabilityerr

import (
	"testing"

	"repro/internal/analysis/vet"
)

// TestFixture runs the analyzer over the miniature module in
// testdata/durability and compares findings against its // want
// comments in both directions.
func TestFixture(t *testing.T) {
	problems, err := vet.CheckFixture("testdata/durability", Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
