// Package durabilityerr polices error handling on the paths that decide
// whether committed data survives a crash. A dropped error from Sync,
// Close-on-a-written-file, Write, Flush or Checkpoint converts "the WAL
// frame is on disk" into "the WAL frame is probably on disk", which is
// exactly the bug class the recovery suite cannot catch (the test
// filesystem never fails).
//
// Checks, scoped to internal/sqldb, internal/store, internal/proxy and
// cmd/ (the durability and serving paths — helper packages like workload
// generators are exempt):
//
//  1. Statement-position calls that discard a returned error, when the
//     callee is durability-relevant by name (Sync, Close, Write,
//     WriteString, Flush, Checkpoint, Truncate, Rename). A bare call is
//     tolerated only inside a block that already returns a non-nil error
//     (best-effort cleanup on an error path).
//
//  2. defer f.Close() where f came from a writing open
//     (os.Create/OpenFile): the deferred Close's error vanishes, and on
//     some filesystems Close is where delayed write errors surface.
//     Write-path files must be closed explicitly with the error checked
//     (or via a named-return wrapper).
//
//  3. Blank-discarded errors — `x, _ :=` — from durability-relevant
//     callees, including Marshal-family (a swallowed Marshal error
//     persists an empty manifest).
//
//  4. Shadow-overwrites: `err = f()` immediately followed by another
//     `err = g()` in the same block with no read of err in between — the
//     first failure is silently lost.
package durabilityerr

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/vet"
)

const name = "durabilityerr"

var Analyzer = &vet.Analyzer{
	Name: name,
	Doc:  "dropped, blank-discarded or shadowed errors on durability-critical paths",
	Run:  run,
}

// durabilityNames are callee names whose error results must not be
// dropped on the write path.
var durabilityNames = map[string]bool{
	"Sync": true, "Close": true, "Write": true, "WriteString": true,
	"Flush": true, "Checkpoint": true, "Truncate": true, "Rename": true,
}

func inScope(path string) bool {
	return vet.PathContains(path, "internal/sqldb") ||
		vet.PathContains(path, "internal/store") ||
		vet.PathContains(path, "internal/proxy") ||
		vet.PathContains(path, "internal/repl") ||
		vet.PathContains(path, "cmd")
}

func run(m *vet.Module) []vet.Finding {
	var out []vet.Finding
	for _, pkg := range m.Pkgs {
		if !inScope(pkg.Path) {
			continue
		}
		vet.EachFunc(pkg, func(fd *ast.FuncDecl) {
			out = append(out, checkFunc(m, pkg, fd)...)
		})
	}
	return out
}

func checkFunc(m *vet.Module, pkg *vet.Package, fd *ast.FuncDecl) []vet.Finding {
	var out []vet.Finding
	writeFiles := writeOpenedFiles(pkg, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			out = append(out, shadowedErr(m, pkg, n)...)
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := vet.CalleeFunc(pkg.Info, call)
			if fn == nil || !durabilityNames[fn.Name()] || !vet.LastResultIsError(fn) {
				return true
			}
			if inMemoryWriter(pkg, call, fn) {
				return true
			}
			if onErrorPath(pkg, fd.Body, n) {
				return true
			}
			out = append(out, vet.Finding{
				Pos:      m.Fset.Position(call.Pos()),
				Analyzer: name,
				Message:  fmt.Sprintf("error from %s dropped on a durability path — check it or annotate the cleanup", fn.Name()),
			})
		case *ast.DeferStmt:
			call := n.Call
			fn := vet.CalleeFunc(pkg.Info, call)
			if fn == nil || fn.Name() != "Close" {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := vet.FieldObj(pkg.Info, sel.X)
			if obj == nil || !writeFiles[obj] {
				return true
			}
			out = append(out, vet.Finding{
				Pos:      m.Fset.Position(n.Pos()),
				Analyzer: name,
				Message:  fmt.Sprintf("deferred Close on write-opened file %s discards the error — close explicitly and check it", obj.Name()),
			})
		case *ast.AssignStmt:
			out = append(out, blankDiscard(m, pkg, n)...)
		}
		return true
	})
	return out
}

// inMemoryWriter reports whether the callee is a method on an in-memory
// writer whose error result is documented never to be non-nil
// (bytes.Buffer, strings.Builder, the hash.Hash family) — a dropped error
// there cannot lose durable state. The check looks at the static type of
// the receiver expression, not the method's declaring type: hash.Hash
// gets Write by embedding io.Writer, and io.Writer itself must stay a
// sink.
func inMemoryWriter(pkg *vet.Package, call *ast.CallExpr, fn *types.Func) bool {
	exempt := func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() == nil {
			return false
		}
		p := n.Obj().Pkg().Path()
		return p == "bytes" || p == "strings" || p == "hash" ||
			strings.HasPrefix(p, "hash/")
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := pkg.Info.Types[sel.X].Type; t != nil && exempt(t) {
			return true
		}
	}
	if recv := vet.RecvNamed(fn); recv != nil {
		return exempt(recv)
	}
	return false
}

// writeOpenedFiles finds local *os.File variables produced by a writing
// open (os.Create, os.OpenFile).
func writeOpenedFiles(pkg *vet.Package, fd *ast.FuncDecl) map[types.Object]bool {
	files := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := vet.CalleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if fn.Name() != "Create" && fn.Name() != "OpenFile" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				files[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				files[obj] = true
			}
		}
		return true
	})
	return files
}

// onErrorPath reports whether stmt sits inside a block that returns a
// non-nil error value — the best-effort cleanup idiom:
//
//	if err != nil { f.Close(); return err }
func onErrorPath(pkg *vet.Package, body *ast.BlockStmt, stmt ast.Stmt) bool {
	// Find the innermost enclosing block of stmt.
	var blocks []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			if b.Pos() <= stmt.Pos() && stmt.End() <= b.End() {
				blocks = append(blocks, b)
			}
		}
		return true
	})
	if len(blocks) == 0 {
		return false
	}
	inner := blocks[len(blocks)-1]
	for _, s := range inner.List {
		ret, ok := s.(*ast.ReturnStmt)
		if !ok {
			continue
		}
		for _, r := range ret.Results {
			t := pkg.Info.Types[r].Type
			if t == nil {
				continue
			}
			if named, ok := t.(*types.Named); ok &&
				named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
					continue
				}
				return true
			}
		}
	}
	return false
}

// blankDiscard flags `x, _ := f()` when f is durability-relevant or a
// Marshal-family encoder and the blank discards its error.
func blankDiscard(m *vet.Module, pkg *vet.Package, as *ast.AssignStmt) []vet.Finding {
	if len(as.Rhs) != 1 {
		return nil
	}
	blankLast := false
	if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
		blankLast = true
	}
	if !blankLast {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := vet.CalleeFunc(pkg.Info, call)
	if fn == nil || !vet.LastResultIsError(fn) {
		return nil
	}
	callee := fn.Name()
	if !durabilityNames[callee] && !strings.Contains(callee, "Marshal") {
		return nil
	}
	return []vet.Finding{{
		Pos:      m.Fset.Position(as.Pos()),
		Analyzer: name,
		Message:  fmt.Sprintf("error from %s discarded with _ on a durability path", callee),
	}}
}

// shadowedErr flags sibling statements `err = f(); err = g()` with no
// read of err between the two writes.
func shadowedErr(m *vet.Module, pkg *vet.Package, block *ast.BlockStmt) []vet.Finding {
	var out []vet.Finding
	var lastWrite map[types.Object]ast.Stmt
	lastWrite = make(map[types.Object]ast.Stmt)
	for _, s := range block.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			// Any other statement may read err (if err != nil, return err,
			// use in call); reset conservatively if it mentions the vars.
			clearReads(pkg, s, lastWrite)
			continue
		}
		// Reads on the RHS first.
		for _, r := range as.Rhs {
			clearReadsExpr(pkg, r, lastWrite)
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Uses[id]
			if obj == nil {
				obj = pkg.Info.Defs[id]
			}
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if prev, dirty := lastWrite[obj]; dirty && as.Tok == token.ASSIGN {
				out = append(out, vet.Finding{
					Pos:      m.Fset.Position(as.Pos()),
					Analyzer: name,
					Message: fmt.Sprintf("assignment shadows unchecked error %s set at line %d",
						obj.Name(), m.Fset.Position(prev.Pos()).Line),
				})
			}
			lastWrite[obj] = as
		}
	}
	return out
}

func clearReads(pkg *vet.Package, s ast.Stmt, lastWrite map[types.Object]ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				delete(lastWrite, obj)
			}
		}
		return true
	})
}

func clearReadsExpr(pkg *vet.Package, e ast.Expr, lastWrite map[types.Object]ast.Stmt) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				delete(lastWrite, obj)
			}
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
