// Package sqldb holds the seeded durability error-handling bugs for the
// durabilityerr golden test — a dropped Sync, a deferred Close on a
// write-opened file, a blank-discarded Marshal, a shadowed error — next
// to the fixed forms and sanctioned idioms the analyzer must accept.
package sqldb

import (
	"encoding/json"
	"hash/fnv"
	"os"
)

type walWriter struct {
	f *os.File
}

// flushDropped drops the Sync error outright: "the frame is on disk"
// silently becomes "the frame is probably on disk".
func (w *walWriter) flushDropped(frame []byte) error {
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.f.Sync() // want "error from Sync dropped on a durability path"
	return nil
}

// flushChecked is the fixed form.
func (w *walWriter) flushChecked(frame []byte) error {
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	return w.f.Sync()
}

// snapshotDeferred lets the deferred Close swallow delayed write errors.
func snapshotDeferred(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on write-opened file f discards the error"
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// installFile is the fixed form: explicit Close with the error checked,
// and best-effort cleanup Closes tolerated on paths that already return
// a non-nil error.
func installFile(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// persistManifest blank-discards the Marshal error: a swallowed failure
// persists an empty manifest.
func persistManifest(path string) error {
	data, _ := json.Marshal(map[string]int{"shards": 4}) // want "error from Marshal discarded with _ on a durability path"
	return os.WriteFile(path, data, 0o600)
}

// closeBoth overwrites the first Sync's error before anyone reads it.
func closeBoth(a, b *os.File) error {
	var err error
	err = a.Sync()
	err = b.Sync() // want "assignment shadows unchecked error err set at line"
	return err
}

// releaseLock mirrors the real repo's sanctioned exception: the lock
// file carries no data, and the justified annotation suppresses the
// finding.
func releaseLock(f *os.File) {
	//cryptdb:vet-ok durabilityerr: fixture mirror of the lock-file release exception
	f.Close()
}

// checksum writes into an in-memory hash: that Write cannot lose
// durable state and stays exempt.
func checksum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}
