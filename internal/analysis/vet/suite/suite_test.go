package suite

import (
	"path/filepath"
	"testing"
)

// TestRepositoryIsClean runs the full analyzer suite over the real
// module. The tree must stay free of findings — every deliberate
// exception carries its justification annotation in source — which is
// what lets CI treat any cryptdb-vet output as a hard failure.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs("../../../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
