// Package suite registers the full analyzer set. It exists separately
// from the framework package so analyzers can import vet without a
// cycle, and so the driver and the self-test share one registry.
package suite

import (
	"repro/internal/analysis/vet"
	"repro/internal/analysis/vet/cryptohygiene"
	"repro/internal/analysis/vet/durabilityerr"
	"repro/internal/analysis/vet/lockorder"
	"repro/internal/analysis/vet/plaintextflow"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*vet.Analyzer {
	return []*vet.Analyzer{
		plaintextflow.Analyzer,
		lockorder.Analyzer,
		durabilityerr.Analyzer,
		cryptohygiene.Analyzer,
	}
}

// Run loads the module rooted at root and applies the whole suite.
func Run(root string) ([]vet.Finding, error) {
	m, err := vet.Load(root)
	if err != nil {
		return nil, err
	}
	return vet.Apply(m, All()), nil
}
