// Package probe exercises the annotation machinery: the first
// suppression has no justification — it must become a finding and
// suppress nothing — while the justified one below must suppress the
// probe analyzer's finding on the line it covers.
package probe

func unjustified() int {
	//cryptdb:vet-ok probe:
	return 1
}

func justified() int {
	//cryptdb:vet-ok probe: fixture exception with a written-down reason
	return 2
}
