// Shared AST/type-resolution helpers for the analyzers.
package vet

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the *types.Func a call expression statically
// invokes — a package function, a method (value or interface dispatch on
// a typed receiver), or nil for builtins, conversions and calls through
// function-typed variables.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// RecvNamed returns the named type of a method's receiver (pointer
// stripped), or nil for package-level functions.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// DeclaredIn reports whether an object is declared in a package whose
// import path contains seg as a segment run (see PathContains). Objects
// from the universe scope or with no package return false.
func DeclaredIn(obj types.Object, seg string) bool {
	return obj != nil && obj.Pkg() != nil && PathContains(obj.Pkg().Path(), seg)
}

// NamedDeclaredIn reports whether a type (after stripping pointers) is a
// named type declared in a package whose path contains seg.
func NamedDeclaredIn(t types.Type, seg string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return DeclaredIn(n.Obj(), seg)
}

// LastResultIsError reports whether fn's final result is the builtin
// error type.
func LastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// FieldObj resolves the object a selector or identifier denotes —
// typically the struct field or variable a mutex lives in. Returns nil
// when the expression is not a plain variable/field reference.
func FieldObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		// stripes[i].mu reaches here as the X of the outer selector; the
		// caller handles the selector itself. An index expression alone
		// denotes no single object.
		return nil
	}
	return nil
}

// EachFunc visits every function and method declaration with a body in
// the package.
func EachFunc(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
