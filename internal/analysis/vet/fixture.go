// Golden-fixture harness. Each analyzer keeps a miniature module under
// testdata/<name>/ that mirrors the real repository's layout (its own
// go.mod, internal/store, internal/crypto/..., cmd/... directories), with
// seeded true positives marked by trailing
//
//	// want "regexp"
//
// comments on the offending line, and the fixed form of each bug left
// unmarked to prove the analyzer stays silent on it. CheckFixture loads
// the fixture module, runs the analyzers (with the same suppression
// machinery as the real driver), and reports every mismatch in either
// direction: an expected finding that did not fire, or a finding no
// comment expects.
package vet

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// CheckFixture runs analyzers over the fixture module at dir and compares
// findings against the // want comments in its sources. It returns one
// human-readable problem string per mismatch; an empty slice means the
// fixture passed.
func CheckFixture(dir string, analyzers ...*Analyzer) ([]string, error) {
	m, err := Load(dir)
	if err != nil {
		return nil, err
	}
	var expects []*expectation
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			name := m.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			for i, line := range strings.Split(string(data), "\n") {
				mm := wantRe.FindStringSubmatch(line)
				if mm == nil {
					continue
				}
				re, err := regexp.Compile(mm[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", name, i+1, mm[1], err)
				}
				expects = append(expects, &expectation{file: name, line: i + 1, re: re, raw: mm[1]})
			}
		}
	}
	findings := Apply(m, analyzers)

	var problems []string
	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", rel(dir, f)))
		}
	}
	for _, e := range expects {
		if !e.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: expected finding matching %q did not fire",
				relPath(dir, e.file), e.line, e.raw))
		}
	}
	return problems, nil
}

func rel(dir string, f Finding) string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", relPath(dir, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

func relPath(dir, file string) string {
	if r, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}
