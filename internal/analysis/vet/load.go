// The module loader: parse and type-check every package in a Go module
// using only the standard library. Module-internal imports resolve
// against the loader's own package map (checked in dependency order);
// standard-library imports go through go/importer's source compiler,
// which type-checks GOROOT sources directly — no export data, no
// golang.org/x/tools, no network. Cgo is disabled so packages like net
// resolve to their pure-Go variants.
package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package of the module under
// analysis.
type Package struct {
	Dir   string // absolute directory
	Path  string // import path (modulePath/relative-dir)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the whole loaded module.
type Module struct {
	Root   string // absolute module root (directory holding go.mod)
	Path   string // module path from go.mod
	Fset   *token.FileSet
	Pkgs   []*Package // dependency order (imports before importers)
	ByPath map[string]*Package
}

// sharedFset is one process-wide FileSet: the stdlib source importer is
// bound to its FileSet, and sharing one lets every Load in a process
// (driver run, self-test, fixture tests) reuse the same type-checked
// standard library instead of re-checking it per module.
var (
	sharedFset = token.NewFileSet()
	stdOnce    sync.Once
	stdImp     types.ImporterFrom
)

func stdImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		build.Default.CgoEnabled = false
		stdImp = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return stdImp
}

// loadMu serializes Load calls: the shared source importer is not safe
// for concurrent use.
var loadMu sync.Mutex

// Load parses and type-checks the module rooted at dir (which must
// contain a go.mod). Only non-test files that build on the current
// platform are included; testdata and hidden directories are skipped.
func Load(root string) (*Module, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: sharedFset, ByPath: make(map[string]*Package)}

	ctx := build.Default
	ctx.CgoEnabled = false

	type src struct {
		pkg     *Package
		imports []string
	}
	srcs := make(map[string]*src)
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := ctx.ImportDir(p, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			// A directory holding only test files (the repo root's e2e and
			// bench suites) is not a loadable package either.
			if strings.Contains(err.Error(), "no buildable Go source files") {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		s := &src{pkg: &Package{Dir: p, Path: imp}, imports: bp.Imports}
		for _, f := range bp.GoFiles {
			af, err := parser.ParseFile(m.Fset, filepath.Join(p, f), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			s.pkg.Files = append(s.pkg.Files, af)
		}
		srcs[imp] = s
		return nil
	})
	if err != nil {
		return nil, err
	}

	std := stdImporter()
	checking := make(map[string]bool)
	var check func(path string) (*types.Package, error)
	check = func(path string) (*types.Package, error) {
		if p, ok := m.ByPath[path]; ok {
			return p.Pkg, nil
		}
		s, ok := srcs[path]
		if !ok {
			return nil, fmt.Errorf("vet: import %q not found in module %s", path, modPath)
		}
		if checking[path] {
			return nil, fmt.Errorf("vet: import cycle through %q", path)
		}
		checking[path] = true
		defer delete(checking, path)
		for _, im := range s.imports {
			if im == modPath || strings.HasPrefix(im, modPath+"/") {
				if _, err := check(im); err != nil {
					return nil, err
				}
			}
		}
		conf := types.Config{
			Importer: importerFunc(func(ipath, dir string) (*types.Package, error) {
				if ipath == modPath || strings.HasPrefix(ipath, modPath+"/") {
					return check(ipath)
				}
				return std.ImportFrom(ipath, dir, 0)
			}),
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		tpkg, err := conf.Check(path, m.Fset, s.pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("vet: type-checking %s: %w", path, err)
		}
		s.pkg.Pkg, s.pkg.Info = tpkg, info
		m.ByPath[path] = s.pkg
		m.Pkgs = append(m.Pkgs, s.pkg)
		return tpkg, nil
	}

	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := check(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("vet: module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			name = strings.Trim(name, `"`)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("vet: no module directive in %s", gomod)
}

type importerFunc func(path, dir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path, "") }
func (f importerFunc) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return f(path, dir)
}
