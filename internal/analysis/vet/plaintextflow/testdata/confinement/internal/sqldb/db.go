// Package sqldb mirrors the storage engine's execution surface: every
// argument crossing it must already be ciphertext.
package sqldb

// DB is the ciphertext-only store.
type DB struct{}

// ExecSQL executes a raw SQL string at the DBMS.
func (d *DB) ExecSQL(q string) error { _ = q; return nil }

// SetMeta persists a sealed metadata blob.
func (d *DB) SetMeta(meta []byte) error { _ = meta; return nil }
