// Package sqlparser mirrors the real module's AST package: statement
// types carry the application's plaintext literals until the proxy's
// rewrite replaces them with ciphertext.
package sqlparser

// SelectStmt is a minimal statement carrying a raw predicate.
type SelectStmt struct {
	Where string
}
