// Package proxy holds the seeded plaintext-confinement violations the
// golden test expects the analyzer to catch, next to the fixed forms it
// must stay silent on.
package proxy

import (
	"fmt"
	"net"

	"fixture/internal/crypto/keys"
	"fixture/internal/sqldb"
	"fixture/internal/sqlparser"
)

// leakKey ships a derived key to the storage engine: the core violation.
func leakKey(db *sqldb.DB, mk keys.MasterKey) error {
	kb := mk.DeriveLabel("col")
	return db.ExecSQL(string(kb)) // want "key material \(DeriveLabel\) reaches the storage engine"
}

// passthrough forwards the raw statement without rewriting it: the AST
// still carries the application's literals.
func passthrough(db *sqldb.DB, st *sqlparser.SelectStmt) error {
	return db.ExecSQL(st.Where) // want "statement AST .* reaches the storage engine"
}

// debugDump prints key bytes: the console is a sink too.
func debugDump(mk keys.MasterKey) {
	kb := mk.DeriveLabel("col")
	fmt.Printf("derived=%x\n", kb) // want "key material \(DeriveLabel\) reaches a console/log sink"
}

// leakNet writes key bytes to a connection.
func leakNet(c net.Conn, mk keys.MasterKey) {
	kb := mk.DeriveLabel("net")
	c.Write(kb) // want "key material \(DeriveLabel\) reaches a network connection"
}

// storeSealed is the fixed form: an encrypt-named chokepoint
// declassifies, so nothing downstream of it is tainted.
func storeSealed(db *sqldb.DB, mk keys.MasterKey) error {
	kb := mk.DeriveLabel("col")
	return db.ExecSQL(string(encryptValue(kb)))
}

// adjustOnion mirrors the real repo's deliberate exception: the
// onion-adjustment UPDATE ships a layer key to the DBMS by design, and
// the justified annotation suppresses the finding.
func adjustOnion(db *sqldb.DB, mk keys.MasterKey) error {
	kb := mk.DeriveLabel("onion")
	//cryptdb:sink-ok fixture mirror of the onion-adjustment exception (§3.1)
	return db.ExecSQL(string(kb))
}

func encryptValue(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
