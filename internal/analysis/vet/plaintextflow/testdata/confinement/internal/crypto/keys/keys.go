// Package keys mirrors the real module's key-derivation package; every
// value and derivation result that leaves it is key material.
package keys

// MasterKey is the proxy's root secret.
type MasterKey [16]byte

// DeriveLabel derives a per-label subkey.
func (k MasterKey) DeriveLabel(label string) []byte {
	out := make([]byte, len(k))
	for i := range out {
		out[i] = k[i] ^ byte(len(label))
	}
	return out
}
