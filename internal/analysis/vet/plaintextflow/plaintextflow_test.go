package plaintextflow

import (
	"testing"

	"repro/internal/analysis/vet"
)

// TestFixture runs the analyzer over the miniature module in
// testdata/confinement and compares findings against its // want
// comments in both directions.
func TestFixture(t *testing.T) {
	problems, err := vet.CheckFixture("testdata/confinement", Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
