// Package plaintextflow enforces CryptDB's core invariant: plaintext and
// key material never cross below the proxy's encryption chokepoints. The
// DBMS — everything behind store.Engine/store.Conn, including its WAL
// files — must only ever see onion ciphertexts and sealed metadata blobs;
// logs and network writes must never leak decrypted values or derived
// keys.
//
// The pass is an intra-procedural taint analysis over the packages where
// plaintext legitimately exists (internal/proxy, internal/mp,
// cmd/cryptdb-server). Taint sources:
//
//   - results of Decrypt-named calls into internal/crypto (rnd, det, ope,
//     hom, cmc, search) and of decrypt* helpers in the analyzed package;
//   - key material: any value typed by internal/crypto/keys, any named
//     "Key" type under internal/crypto (hom.Key, joinadj.Key), results of
//     calls into internal/crypto/keys, and *key-named helpers (colKey,
//     joinKey);
//   - parser plaintext: sqlparser-typed function parameters (statement
//     ASTs carry application literals until the rewrite encrypts them);
//   - in cmd/cryptdb-server: result sets from Execute calls, which hold
//     decrypted rows.
//
// Sinks: arguments of store.Engine/store.Conn/sqldb execution methods
// (Exec, ExecSQL, ExecWithMeta, ExecAutonomous[WithMeta], SetMeta),
// fmt/log printing, and net.Conn writes. Encryption chokepoints
// declassify: a call whose callee name contains "encrypt" or "seal"
// returns ciphertext. Deliberate exceptions — the onion-adjustment UPDATE
// that ships a layer key to the DBMS by design, the server writing
// decrypted rows back to the trusted application side — carry
// //cryptdb:sink-ok annotations with their justification.
//
// The analysis is deliberately under-approximating: taint propagates only
// through modeled constructs (assignment, composite literals, indexing,
// string/bytes/fmt-style transformations, method calls on tainted
// receivers), never through unknown function calls. A silent run
// therefore doesn't prove confinement, but every finding is worth
// reading, which is what lets CI treat any finding as a hard failure.
package plaintextflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/vet"
)

const name = "plaintextflow"

var Analyzer = &vet.Analyzer{
	Name: name,
	Doc:  "plaintext and key material must not reach the store engine, logs, or the network except via encryption chokepoints",
	Run:  run,
}

// engineSinkMethods are the execution-surface methods of
// store.Engine/store.Conn and the underlying sqldb types.
var engineSinkMethods = map[string]bool{
	"Exec": true, "ExecSQL": true, "ExecWithMeta": true,
	"ExecAutonomous": true, "ExecAutonomousWithMeta": true,
	"SetMeta": true,
}

// fmtSinks are fmt functions that emit to a writer or the console;
// Sprint-style formatters are propagators instead.
var fmtSinks = map[string]int{
	// name -> index of first data argument (skips the io.Writer)
	"Print": 0, "Println": 0, "Printf": 0,
	"Fprint": 1, "Fprintln": 1, "Fprintf": 1,
}

func inScope(path string) bool {
	return vet.PathContains(path, "internal/proxy") ||
		vet.PathContains(path, "internal/mp") ||
		strings.HasSuffix(path, "cmd/cryptdb-server")
}

func isServerPkg(path string) bool {
	return strings.HasSuffix(path, "cmd/cryptdb-server")
}

func run(m *vet.Module) []vet.Finding {
	var out []vet.Finding
	for _, pkg := range m.Pkgs {
		if !inScope(pkg.Path) {
			continue
		}
		server := isServerPkg(pkg.Path)
		vet.EachFunc(pkg, func(fd *ast.FuncDecl) {
			a := &funcTaint{
				m: m, pkg: pkg, server: server,
				taint: make(map[types.Object]string),
			}
			a.seedParams(fd)
			out = append(out, a.reportSinks(fd.Body)...)
		})
	}
	return out
}

// funcTaint is the per-function taint state: every tainted object maps to
// a human-readable description of where its taint came from.
type funcTaint struct {
	m      *vet.Module
	pkg    *vet.Package
	server bool
	taint  map[types.Object]string
}

// seedParams taints sqlparser-typed parameters: an incoming statement AST
// carries the application's plaintext literals until the rewrite replaces
// them with ciphertext.
func (a *funcTaint) seedParams(fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := a.pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if isParserType(obj.Type()) {
				a.taint[obj] = "statement AST (may carry plaintext literals)"
			}
		}
	}
}

// isParserType reports whether t is (a pointer/slice of) a named type
// declared in internal/sqlparser.
func isParserType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return isParserType(t.Elem())
	case *types.Slice:
		return isParserType(t.Elem())
	case *types.Named:
		return vet.DeclaredIn(t.Obj(), "internal/sqlparser")
	}
	return false
}

// isKeyMaterialType reports whether t is key material by type: anything
// from internal/crypto/keys, or a named "Key" type under internal/crypto.
func isKeyMaterialType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if vet.DeclaredIn(n.Obj(), "internal/crypto/keys") {
		return true
	}
	return n.Obj().Name() == "Key" && vet.DeclaredIn(n.Obj(), "internal/crypto")
}

// fixpointBody walks the body repeatedly until the taint set stabilizes.
func (a *funcTaint) fixpointBody(body ast.Node) {
	for range [10]struct{}{} {
		before := len(a.taint)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				a.assign(n)
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							if t, why := a.exprTaint(vs.Values[i]); t {
								a.mark(a.pkg.Info.Defs[name], why)
							}
						}
					}
				}
			case *ast.RangeStmt:
				if t, why := a.exprTaint(n.X); t {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							a.mark(a.pkg.Info.Defs[id], why)
							a.mark(a.pkg.Info.Uses[id], why)
						}
					}
				}
			}
			return true
		})
		if len(a.taint) == before {
			return
		}
	}
}

func (a *funcTaint) mark(obj types.Object, why string) {
	if obj == nil {
		return
	}
	if _, ok := a.taint[obj]; !ok {
		a.taint[obj] = why
	}
}

func (a *funcTaint) assign(n *ast.AssignStmt) {
	// Tuple form a, b := call(): a source call taints every non-error LHS.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		if t, why := a.exprTaint(n.Rhs[0]); t {
			for _, lhs := range n.Lhs {
				a.markLHS(lhs, why)
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		if t, why := a.exprTaint(n.Rhs[i]); t {
			a.markLHS(lhs, why)
		}
	}
}

// markLHS taints the object behind an assignment target: the ident
// itself, or the base of an index/field store (writing a tainted element
// taints the container).
func (a *funcTaint) markLHS(lhs ast.Expr, why string) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if isErrorIdent(a.pkg.Info, lhs) {
			return
		}
		if obj := a.pkg.Info.Defs[lhs]; obj != nil {
			a.mark(obj, why)
			return
		}
		a.mark(a.pkg.Info.Uses[lhs], why)
	case *ast.IndexExpr:
		a.markLHS(lhs.X, why)
	case *ast.SelectorExpr:
		// Deliberately NOT tainting the base: `p.homKey = k` would mark
		// the whole proxy object and every later read of any field on it
		// — the restore path assigns dozens of key fields and the cascade
		// drowns real findings. Reads of key-material-typed fields stay
		// tainted through the type-based check in exprTaint.
	case *ast.StarExpr:
		a.markLHS(lhs.X, why)
	}
}

func isErrorIdent(info *types.Info, id *ast.Ident) bool {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return false
	}
	n, ok := obj.Type().(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// exprTaint reports whether an expression carries taint, and why.
func (a *funcTaint) exprTaint(e ast.Expr) (bool, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.pkg.Info.Uses[e]
		if obj == nil {
			obj = a.pkg.Info.Defs[e]
		}
		if why, ok := a.taint[obj]; ok {
			return true, why
		}
		if obj != nil && isKeyMaterialType(obj.Type()) {
			return true, "key material (" + obj.Name() + ")"
		}
	case *ast.SelectorExpr:
		if sel, ok := a.pkg.Info.Selections[e]; ok && isKeyMaterialType(sel.Type()) {
			return true, "key material (" + e.Sel.Name + ")"
		}
		if t, why := a.exprTaint(e.X); t {
			return true, why
		}
	case *ast.CallExpr:
		return a.callTaint(e)
	case *ast.BinaryExpr:
		if t, why := a.exprTaint(e.X); t {
			return true, why
		}
		return a.exprTaint(e.Y)
	case *ast.UnaryExpr:
		return a.exprTaint(e.X)
	case *ast.StarExpr:
		return a.exprTaint(e.X)
	case *ast.IndexExpr:
		return a.exprTaint(e.X)
	case *ast.SliceExpr:
		return a.exprTaint(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t, why := a.exprTaint(el); t {
				return true, why
			}
		}
	case *ast.TypeAssertExpr:
		return a.exprTaint(e.X)
	}
	return false, ""
}

// callTaint classifies a call as declassifier, source, or propagator.
func (a *funcTaint) callTaint(call *ast.CallExpr) (bool, string) {
	// Conversions: string(b), []byte(s) — taint follows the operand.
	if tv, ok := a.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.exprTaint(call.Args[0])
	}
	// Builtins append/copy propagate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if id.Name == "append" || id.Name == "copy" {
			for _, arg := range call.Args {
				if t, why := a.exprTaint(arg); t {
					return true, why
				}
			}
			return false, ""
		}
	}
	fn := vet.CalleeFunc(a.pkg.Info, call)
	if fn != nil {
		lower := strings.ToLower(fn.Name())
		// Declassifiers: encryption and sealing chokepoints return
		// ciphertext regardless of what went in.
		if strings.Contains(lower, "encrypt") || strings.Contains(lower, "seal") {
			return false, ""
		}
		// Sources.
		if strings.Contains(lower, "decrypt") &&
			(vet.DeclaredIn(fn, "internal/crypto") || fn.Pkg() == a.pkg.Pkg) {
			return true, "decryption result (" + fn.Name() + ")"
		}
		if vet.DeclaredIn(fn, "internal/crypto/keys") {
			return true, "key material (" + fn.Name() + ")"
		}
		if recv := vet.RecvNamed(fn); recv != nil && isKeyMaterialType(recv) {
			return true, "key material (" + fn.Name() + ")"
		}
		if strings.HasSuffix(lower, "key") &&
			(vet.DeclaredIn(fn, "internal/proxy") || vet.DeclaredIn(fn, "internal/mp") || vet.DeclaredIn(fn, "internal/crypto")) {
			return true, "key material (" + fn.Name() + ")"
		}
		if a.server && fn.Name() == "Execute" {
			return true, "decrypted result set (Execute)"
		}
		// Propagators: pure string/byte/encoding transformations.
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "strings", "strconv", "bytes", "encoding/json", "encoding/hex", "encoding/base64":
				for _, arg := range call.Args {
					if t, why := a.exprTaint(arg); t {
						return true, why
					}
				}
				return false, ""
			case "fmt":
				if strings.HasPrefix(fn.Name(), "Sprint") || fn.Name() == "Errorf" || strings.HasPrefix(fn.Name(), "Append") {
					for _, arg := range call.Args {
						if t, why := a.exprTaint(arg); t {
							return true, why
						}
					}
					return false, ""
				}
			}
		}
	}
	// A method call on a tainted receiver yields tainted data
	// (v.String() on a decrypted value).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t, why := a.exprTaint(sel.X); t {
			return true, why
		}
	}
	return false, ""
}

// reportSinks does the final pass: every sink call gets its arguments
// checked against the converged taint state.
func (a *funcTaint) reportSinks(body ast.Node) []vet.Finding {
	a.fixpointBody(body)
	var out []vet.Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := vet.CalleeFunc(a.pkg.Info, call)
		if fn == nil {
			return true
		}
		checkArgs := func(from int, sink string) {
			for i := from; i < len(call.Args); i++ {
				if t, why := a.exprTaint(call.Args[i]); t {
					out = append(out, vet.Finding{
						Pos:      a.m.Fset.Position(call.Pos()),
						Analyzer: name,
						Message:  why + " reaches " + sink + " in call to " + fn.Name(),
					})
				}
			}
		}
		if recv := vet.RecvNamed(fn); recv != nil && engineSinkMethods[fn.Name()] &&
			(vet.DeclaredIn(recv.Obj(), "internal/store") || vet.DeclaredIn(recv.Obj(), "internal/sqldb")) {
			checkArgs(0, "the storage engine (ciphertext-only boundary)")
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if from, ok := fmtSinks[fn.Name()]; ok {
				checkArgs(from, "a console/log sink")
			}
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "log" {
			checkArgs(0, "a log sink")
			return true
		}
		if recv := vet.RecvNamed(fn); recv != nil &&
			(fn.Name() == "Write" || fn.Name() == "WriteString") &&
			recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "net" {
			checkArgs(0, "a network connection")
		}
		return true
	})
	return out
}
