// Package proxy seeds the printed-key violation: key-typed values must
// not reach fmt or log printers anywhere in the module.
package proxy

import (
	"fmt"

	"fixture/internal/crypto/rnd"
)

// dumpKey formats the raw key into a log line.
func dumpKey(k rnd.Key) {
	fmt.Println("key:", k) // want "key material passed to fmt.Println"
}

// dumpCount is the fixed form: log a derived, non-secret value.
func dumpCount(n int) {
	fmt.Println("keys loaded:", n)
}
