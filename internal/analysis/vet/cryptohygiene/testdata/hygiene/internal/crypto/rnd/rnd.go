// Package rnd holds the seeded crypto-hygiene violations for the golden
// test — a math/rand import inside the crypto tree, a printable key
// type, an all-zero GCM nonce — next to the fixed forms.
package rnd

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	mrand "math/rand" // want "math/rand imported under internal/crypto"
)

// Key is AES key material.
type Key [16]byte

// String makes the key printable: exactly how secrets leak into logs
// and error chains.
func (k Key) String() string { // want "key-material type Key declares String"
	return "rnd-key"
}

func pad(n int) int64 { return mrand.Int63n(int64(n)) }

// EncryptZero seals under a never-filled nonce: with a reused key this
// voids GCM entirely.
func EncryptZero(k Key, msg []byte) []byte {
	g := mustGCM(k)
	nonce := make([]byte, g.NonceSize())
	return g.Seal(nil, nonce, msg, nil) // want "nonce nonce reaches Seal without being filled"
}

// Encrypt is the fixed form: the nonce is drawn from crypto/rand before
// use.
func Encrypt(k Key, msg []byte) []byte {
	g := mustGCM(k)
	nonce := make([]byte, g.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		panic(err)
	}
	return g.Seal(nonce, nonce, msg, nil)
}

func mustGCM(k Key) cipher.AEAD {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(err)
	}
	g, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	return g
}
