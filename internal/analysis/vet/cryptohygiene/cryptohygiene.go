// Package cryptohygiene enforces the cryptographic ground rules the
// onion-encryption layer depends on:
//
//  1. No math/rand (or math/rand/v2) anywhere under internal/crypto.
//     Every byte of randomness that touches a key, an IV or a nonce must
//     come from crypto/rand. (Test files are not loaded by the vet
//     module loader, so deterministic test helpers are unaffected.)
//
//  2. AES-GCM nonce discipline: a nonce buffer passed to AEAD.Seal must
//     be written between allocation and use — a make([]byte, n) that
//     flows to Seal with no intervening rand.Read/copy/index-write is an
//     all-zero nonce, which with a reused key voids GCM entirely.
//
//  3. Key material must not be printable: a named type representing key
//     material (declared in a keys package, or named *Key under
//     internal/crypto) must not declare String, GoString, Format,
//     MarshalJSON or MarshalText — those methods are exactly how secrets
//     leak into logs and error chains.
//
//  4. Key-typed values must not be passed to fmt or log printers
//     anywhere in the module.
package cryptohygiene

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/vet"
)

const name = "cryptohygiene"

var Analyzer = &vet.Analyzer{
	Name: name,
	Doc:  "math/rand in crypto, zero AEAD nonces, printable or printed key material",
	Run:  run,
}

func run(m *vet.Module) []vet.Finding {
	var out []vet.Finding
	for _, pkg := range m.Pkgs {
		if vet.PathContains(pkg.Path, "internal/crypto") {
			out = append(out, mathRandImports(m, pkg)...)
			out = append(out, printableKeyTypes(m, pkg)...)
		}
		vet.EachFunc(pkg, func(fd *ast.FuncDecl) {
			out = append(out, zeroNonce(m, pkg, fd)...)
		})
		out = append(out, printedKeys(m, pkg)...)
	}
	return out
}

func mathRandImports(m *vet.Module, pkg *vet.Package) []vet.Finding {
	var out []vet.Finding
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, vet.Finding{
					Pos:      m.Fset.Position(imp.Pos()),
					Analyzer: name,
					Message:  "math/rand imported under internal/crypto — use crypto/rand",
				})
			}
		}
	}
	return out
}

// isKeyMaterialType reports whether a (pointer-stripped) type represents
// key material: declared in a package whose path ends in /keys, or a
// named type containing "Key" declared under internal/crypto.
func isKeyMaterialType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if vet.PathContains(obj.Pkg().Path(), "keys") {
		return true
	}
	return vet.PathContains(obj.Pkg().Path(), "internal/crypto") &&
		strings.Contains(obj.Name(), "Key")
}

var printableMethods = map[string]bool{
	"String": true, "GoString": true, "Format": true,
	"MarshalJSON": true, "MarshalText": true,
}

func printableKeyTypes(m *vet.Module, pkg *vet.Package) []vet.Finding {
	var out []vet.Finding
	vet.EachFunc(pkg, func(fd *ast.FuncDecl) {
		if fd.Recv == nil || !printableMethods[fd.Name.Name] {
			return
		}
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			return
		}
		recv := vet.RecvNamed(obj)
		if recv == nil || !isKeyMaterialType(recv) {
			return
		}
		out = append(out, vet.Finding{
			Pos:      m.Fset.Position(fd.Name.Pos()),
			Analyzer: name,
			Message: fmt.Sprintf("key-material type %s declares %s — key bytes must not be printable",
				recv.Obj().Name(), fd.Name.Name),
		})
	})
	return out
}

// zeroNonce flags `nonce := make([]byte, n)` values that reach an
// AEAD Seal call with no write in between.
func zeroNonce(m *vet.Module, pkg *vet.Package, fd *ast.FuncDecl) []vet.Finding {
	// Variables currently holding an all-zero make([]byte, ...) result.
	zero := make(map[types.Object]bool)
	var out []vet.Finding

	markWritten := func(e ast.Expr) {
		if obj := vet.FieldObj(pkg.Info, e); obj != nil {
			delete(zero, obj)
		}
		if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
			if obj := vet.FieldObj(pkg.Info, ix.X); obj != nil {
				delete(zero, obj)
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if i < len(n.Rhs) {
					if isZeroMake(pkg, n.Rhs[i]) {
						if id, ok := l.(*ast.Ident); ok {
							if obj := pkg.Info.Defs[id]; obj != nil {
								zero[obj] = true
							} else if obj := pkg.Info.Uses[id]; obj != nil {
								zero[obj] = true
							}
							continue
						}
					}
				}
				markWritten(l)
			}
		case *ast.CallExpr:
			fn := vet.CalleeFunc(pkg.Info, n)
			if fn == nil {
				return true
			}
			callee := fn.Name()
			// Writers that fill the buffer.
			if callee == "Read" || callee == "ReadFull" || callee == "Decode" {
				for _, a := range n.Args {
					markWritten(a)
				}
				return true
			}
			if callee == "Seal" || callee == "Open" {
				// crypto/cipher AEAD: Seal(dst, nonce, plaintext, aad).
				if recv := vet.RecvNamed(fn); recv != nil || fn.Pkg() != nil {
					if len(n.Args) >= 2 {
						if obj := vet.FieldObj(pkg.Info, n.Args[1]); obj != nil && zero[obj] {
							out = append(out, vet.Finding{
								Pos:      m.Fset.Position(n.Args[1].Pos()),
								Analyzer: name,
								Message:  fmt.Sprintf("nonce %s reaches %s without being filled — all-zero GCM nonce", obj.Name(), callee),
							})
						}
					}
				}
			}
			// A call taking &buf may write it.
			for _, a := range n.Args {
				if ue, ok := ast.Unparen(a).(*ast.UnaryExpr); ok {
					markWritten(ue.X)
				}
			}
		}
		return true
	})
	// copy(nonce, src) is a builtin, caught here separately because
	// CalleeFunc returns nil for builtins.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
			markWritten(call.Args[0])
		}
		return true
	})
	return out
}

func isZeroMake(pkg *vet.Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	// The builtin itself is recorded in Uses as *types.Builtin; anything
	// else under the name is a shadowing user function.
	if obj := pkg.Info.Uses[id]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return false
		}
	}
	if len(call.Args) < 2 {
		return false
	}
	t := pkg.Info.Types[call.Args[0]].Type
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// printedKeys flags key-material values passed to fmt or log printing
// functions anywhere in the module.
func printedKeys(m *vet.Module, pkg *vet.Package) []vet.Finding {
	var out []vet.Finding
	vet.EachFunc(pkg, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := vet.CalleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			p := fn.Pkg().Path()
			if p != "fmt" && p != "log" {
				return true
			}
			if !strings.Contains(fn.Name(), "Print") &&
				!strings.Contains(fn.Name(), "print") &&
				fn.Name() != "Errorf" && fn.Name() != "Sprintf" &&
				fn.Name() != "Fatalf" && fn.Name() != "Panicf" {
				return true
			}
			for _, a := range call.Args {
				t := pkg.Info.Types[a].Type
				if isKeyMaterialType(t) {
					out = append(out, vet.Finding{
						Pos:      m.Fset.Position(a.Pos()),
						Analyzer: name,
						Message:  fmt.Sprintf("key material passed to %s.%s — secrets must not reach logs or errors", p, fn.Name()),
					})
				}
			}
			return true
		})
	})
	return out
}
