package vet

import (
	"go/ast"
	"testing"
)

// TestEmptyJustification proves the two halves of the annotation
// contract: an annotation with an empty reason is itself a finding and
// suppresses nothing, while a justified annotation suppresses the
// matching analyzer's finding on the line it covers.
func TestEmptyJustification(t *testing.T) {
	m, err := Load("testdata/emptyreason")
	if err != nil {
		t.Fatal(err)
	}
	// The probe reports one finding per return statement; the fixture has
	// one under each annotation.
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every return statement",
		Run: func(m *Module) []Finding {
			var out []Finding
			for _, pkg := range m.Pkgs {
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						if ret, ok := n.(*ast.ReturnStmt); ok {
							out = append(out, Finding{
								Pos:     m.Fset.Position(ret.Pos()),
								Message: "probe: return statement",
							})
						}
						return true
					})
				}
			}
			return out
		},
	}
	findings := Apply(m, []*Analyzer{probe})

	var annotation, probed int
	for _, f := range findings {
		switch f.Analyzer {
		case AnnotationAnalyzer:
			annotation++
		case "probe":
			probed++
		default:
			t.Errorf("unexpected analyzer %q: %s", f.Analyzer, f)
		}
	}
	if annotation != 1 {
		t.Errorf("got %d empty-justification findings, want 1: %v", annotation, findings)
	}
	// Only the return under the empty annotation survives: the justified
	// annotation suppresses the other.
	if probed != 1 {
		t.Errorf("got %d probe findings, want 1 (empty annotation must not suppress): %v", probed, findings)
	}
}
