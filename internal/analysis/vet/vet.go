// Package vet is the static-analysis framework behind cryptdb-vet.
//
// CryptDB's security and durability arguments are invariants, not
// features: plaintext and key material never travel below the proxy's
// encryption chokepoints, locks are acquired in one global order and
// never held across an fsync on the commit hot path, and no error from a
// Sync/Close on a durability path is ever dropped. None of these are
// expressible in Go's type system, so after five PRs they were enforced
// by reviewer vigilance alone. This package gives them a mechanical
// checker: a small loader that parses and type-checks every package in
// the module using only the standard library (go/parser + go/types, with
// the source importer for stdlib dependencies — no golang.org/x/tools,
// so it builds offline), an Analyzer interface the four suites implement
// (see the plaintextflow, lockorder, durabilityerr and cryptohygiene
// subpackages), and the justification-annotation machinery that lets a
// deliberate exception be suppressed — but only with a non-empty reason.
//
// Suppression annotations:
//
//	//cryptdb:sink-ok <reason>            allowlists a plaintextflow sink
//	//cryptdb:vet-ok <analyzer>: <reason> allowlists any analyzer's finding
//
// A trailing annotation suppresses findings on its own line; an
// annotation on a line of its own suppresses the line directly below it.
// An annotation with an empty reason is itself a finding: the whole point
// is that every exception carries its justification in the source.
package vet

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the analyzer that produced it,
// and a message.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. Run receives the fully loaded and
// type-checked module and returns raw findings; the framework applies
// suppression annotations afterwards.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// AnnotationAnalyzer is the pseudo-analyzer name attributed to findings
// about the annotations themselves (empty justifications).
const AnnotationAnalyzer = "annotation"

var (
	sinkOkRe = regexp.MustCompile(`//cryptdb:sink-ok(.*)$`)
	vetOkRe  = regexp.MustCompile(`//cryptdb:vet-ok\s+([a-z]+)\s*:(.*)$`)
)

// suppression is one justification annotation, resolved to the source
// line it covers.
type suppression struct {
	file     string
	line     int
	analyzer string // "" for sink-ok (plaintextflow)
	reason   string
	pos      token.Position // of the annotation itself
}

// collectSuppressions scans every comment in the module for justification
// annotations. A comment group that shares a line with code covers that
// line; a standalone comment group covers the line after its last line.
func collectSuppressions(m *Module) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	srcLines := make(map[string][]string)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := m.Fset.Position(c.Slash)
					text := c.Text
					var analyzer, reason string
					if mm := vetOkRe.FindStringSubmatch(text); mm != nil {
						analyzer, reason = mm[1], strings.TrimSpace(mm[2])
					} else if mm := sinkOkRe.FindStringSubmatch(text); mm != nil {
						analyzer, reason = "", strings.TrimSpace(mm[1])
					} else {
						continue
					}
					if reason == "" {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: AnnotationAnalyzer,
							Message:  "suppression annotation has no justification — state why this exception is sound",
						})
						continue
					}
					line := pos.Line
					if standalone(srcLines, pos) {
						line = endLine(m.Fset, c.End()) + 1
					}
					sups = append(sups, suppression{
						file: pos.Filename, line: line,
						analyzer: analyzer, reason: reason, pos: pos,
					})
				}
			}
		}
	}
	return sups, bad
}

// standalone reports whether the comment at pos has only whitespace
// before it on its source line — a comment on a line of its own, which
// covers the line below, as opposed to a trailing comment covering its
// own line.
func standalone(cache map[string][]string, pos token.Position) bool {
	lines, ok := cache[pos.Filename]
	if !ok {
		if data, err := os.ReadFile(pos.Filename); err == nil {
			lines = strings.Split(string(data), "\n")
		}
		cache[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) {
		return pos.Column == 1
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 <= len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

func endLine(fset *token.FileSet, end token.Pos) int {
	return fset.Position(end).Line
}

// Apply runs analyzers over the module and applies suppression
// annotations: a finding on a covered line from the matching analyzer is
// dropped; annotations without a justification become findings
// themselves. Findings come back sorted by position.
func Apply(m *Module, analyzers []*Analyzer) []Finding {
	sups, bad := collectSuppressions(m)
	type key struct {
		file string
		line int
	}
	byLine := make(map[key][]suppression)
	for _, s := range sups {
		byLine[key{s.file, s.line}] = append(byLine[key{s.file, s.line}], s)
	}
	suppressed := func(f Finding) bool {
		for _, s := range byLine[key{f.Pos.Filename, f.Pos.Line}] {
			if s.analyzer == f.Analyzer {
				return true
			}
			// sink-ok is shorthand for the plaintext-confinement analyzer.
			if s.analyzer == "" && f.Analyzer == "plaintextflow" {
				return true
			}
		}
		return false
	}
	out := append([]Finding(nil), bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if f.Analyzer == "" {
				f.Analyzer = a.Name
			}
			if !suppressed(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}

// PathContains reports whether seg appears as a slash-separated segment
// run inside path ("internal/store" matches "repro/internal/store" and
// "repro/internal/store/sharded"). Matching by segment suffix rather than
// full import path keeps the analyzers honest over both the real module
// and the fixture modules in testdata, which mirror the layout under a
// different module name.
func PathContains(path, seg string) bool {
	return strings.Contains("/"+path+"/", "/"+seg+"/")
}
