// Package lockorder enforces the repository's locking discipline:
//
//  1. Lock acquisition order is acyclic. Every mutex field is a node
//     (identified by its field/variable declaration, so all 64 stripes of
//     the slot-lock table are one node); an edge A→B is recorded whenever
//     B is acquired while A is held, including through static calls (a
//     call under lock to a function that may acquire elsewhere). Any
//     cycle in the global graph is reported at each participating edge.
//
//  2. No shared lock (sync.RWMutex — a lock with readers) is held across
//     an fsync or network operation. The WAL group-commit design depends
//     on this: committers stage frames under the database lock but the
//     leader pays the fsync off-lock. Plain Mutexes that serialize a
//     single session's or connection's own pipeline are exempt — their
//     owner's commit rides under them by construction and stalls nobody
//     else.
//     Functions that release a lock their caller holds (leadUntilDone,
//     drainLocked) are modeled: a callee's "foreign unlocks" are
//     subtracted from the held set before the check. Deliberate
//     exceptions — checkpoint quiesces the world by design — carry
//     //cryptdb:vet-ok lockorder: annotations.
//
//  3. Mutex-bearing structs are not copied by value (parameters, results,
//     assignments from existing values, range copies).
//
//  4. No field mixes atomic and non-atomic access: a field that appears
//     in any sync/atomic call must be accessed atomically everywhere
//     (composite-literal initialization before publication is exempt).
//     PR 4 fixed exactly one such race (InProxySorts) by hand; this makes
//     the class mechanical.
//
// Analysis is name-insensitive and instance-insensitive: lock identity is
// the declared field, so two instances of the same struct alias one node
// and self-edges are skipped (stripe-ordered multi-acquisition would need
// instance tracking to judge).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis/vet"
)

const name = "lockorder"

var Analyzer = &vet.Analyzer{
	Name: name,
	Doc:  "lock acquisition order, fsync/net under lock, mutex copies, mixed atomic access",
	Run:  run,
}

// facts are the per-function summaries used for transitive propagation.
type facts struct {
	acquires       map[types.Object]token.Pos // blocking acquisitions
	foreignUnlocks map[types.Object]bool      // unlocks of locks not acquired here
	syncs          bool                       // direct fsync/net I/O
	callees        map[*types.Func]bool       // static module-internal calls
}

type edge struct {
	from, to types.Object
	pos      token.Pos
	what     string // description of the acquisition site
}

func run(m *vet.Module) []vet.Finding {
	var out []vet.Finding

	// Pass 1: collect per-function facts across the whole module.
	fns := make(map[*types.Func]*facts)
	bodies := make(map[*types.Func]*ast.FuncDecl)
	pkgOf := make(map[*types.Func]*vet.Package)
	for _, pkg := range m.Pkgs {
		vet.EachFunc(pkg, func(fd *ast.FuncDecl) {
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				return
			}
			fns[obj] = collectFacts(pkg, fd)
			bodies[obj] = fd
			pkgOf[obj] = pkg
		})
	}

	// Fixpoint: propagate may-sync, may-acquire and foreign unlocks
	// through static calls.
	mayAcquire := make(map[*types.Func]map[types.Object]bool)
	maySync := make(map[*types.Func]bool)
	mayForeign := make(map[*types.Func]map[types.Object]bool)
	for fn, f := range fns {
		mayAcquire[fn] = make(map[types.Object]bool)
		for o := range f.acquires {
			mayAcquire[fn][o] = true
		}
		maySync[fn] = f.syncs
		mayForeign[fn] = make(map[types.Object]bool)
		for o := range f.foreignUnlocks {
			mayForeign[fn][o] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, f := range fns {
			for callee := range f.callees {
				if _, ok := fns[callee]; !ok {
					continue
				}
				if maySync[callee] && !maySync[fn] {
					maySync[fn] = true
					changed = true
				}
				for o := range mayAcquire[callee] {
					if !mayAcquire[fn][o] {
						mayAcquire[fn][o] = true
						changed = true
					}
				}
				for o := range mayForeign[callee] {
					if !mayForeign[fn][o] {
						mayForeign[fn][o] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: region walk per function — order edges and sync-under-lock.
	var edges []edge
	for fn, fd := range bodies {
		pkg := pkgOf[fn]
		w := &regionWalker{
			m: m, pkg: pkg, fns: fns,
			mayAcquire: mayAcquire, maySync: maySync, mayForeign: mayForeign,
			held: make(map[types.Object]token.Pos),
		}
		w.walkBody(fd.Body)
		edges = append(edges, w.edges...)
		out = append(out, w.findings...)
	}

	// Cycle detection over the global acquisition graph.
	out = append(out, cycleFindings(m, edges)...)

	// Independent sub-checks.
	for _, pkg := range m.Pkgs {
		out = append(out, copyLocks(m, pkg)...)
		out = append(out, atomicMix(m, pkg)...)
	}
	return out
}

// lockObj resolves x in x.Lock()/x.RLock() to the mutex's declaring
// object when x is a sync.Mutex or sync.RWMutex field/variable.
func lockObj(pkg *vet.Package, call *ast.CallExpr) (obj types.Object, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn := vet.CalleeFunc(pkg.Info, call)
	if fn == nil {
		return nil, ""
	}
	recv := vet.RecvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return nil, ""
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil, ""
	}
	return vet.FieldObj(pkg.Info, sel.X), fn.Name()
}

// isSyncCall reports whether a call is a direct fsync or network
// operation.
func isSyncCall(pkg *vet.Package, call *ast.CallExpr) (bool, string) {
	fn := vet.CalleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false, ""
	}
	if recv := vet.RecvNamed(fn); recv != nil {
		if recv.Obj().Pkg() != nil {
			switch {
			case recv.Obj().Pkg().Path() == "os" && recv.Obj().Name() == "File" && fn.Name() == "Sync":
				return true, "fsync"
			case recv.Obj().Pkg().Path() == "net" && recv.Obj().Name() == "Conn" &&
				(fn.Name() == "Write" || fn.Name() == "Read"):
				return true, "network I/O"
			}
		}
		return false, ""
	}
	if fn.Pkg().Path() == "net" && strings.HasPrefix(fn.Name(), "Dial") {
		return true, "network dial"
	}
	return false, ""
}

func collectFacts(pkg *vet.Package, fd *ast.FuncDecl) *facts {
	f := &facts{
		acquires:       make(map[types.Object]token.Pos),
		foreignUnlocks: make(map[types.Object]bool),
		callees:        make(map[*types.Func]bool),
	}
	acquired := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, method := lockObj(pkg, call); obj != nil {
			switch method {
			case "Lock", "RLock":
				f.acquires[obj] = call.Pos()
				acquired[obj] = true
			case "Unlock", "RUnlock":
				if !acquired[obj] {
					f.foreignUnlocks[obj] = true
				}
			}
			return true
		}
		if ok, _ := isSyncCall(pkg, call); ok {
			f.syncs = true
			return true
		}
		if fn := vet.CalleeFunc(pkg.Info, call); fn != nil && fn.Pkg() != nil &&
			(fn.Pkg().Path() == pkg.Path || vet.PathContains(fn.Pkg().Path(), "internal")) {
			f.callees[fn] = true
		}
		return true
	})
	return f
}

// regionWalker tracks the held-lock set through a function body. The walk
// is flow-aware at branch granularity: each arm of an if/switch/select and
// each loop body starts from the held set at entry and its changes are
// discarded afterwards — a defer Unlock inside one switch case must not
// leak "held" into sibling cases. Straight-line code threads the set
// through sequentially. Unlocks inside deferred closures are ignored
// (they run at return); function literals are walked with a fresh held
// set, since a closure runs on its own schedule.
type regionWalker struct {
	m          *vet.Module
	pkg        *vet.Package
	fns        map[*types.Func]*facts
	mayAcquire map[*types.Func]map[types.Object]bool
	maySync    map[*types.Func]bool
	mayForeign map[*types.Func]map[types.Object]bool

	held     map[types.Object]token.Pos
	edges    []edge
	findings []vet.Finding
}

func (w *regionWalker) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	for _, s := range body.List {
		w.stmt(s)
	}
}

func (w *regionWalker) snapshot() map[types.Object]token.Pos {
	c := make(map[types.Object]token.Pos, len(w.held))
	for o, p := range w.held {
		c[o] = p
	}
	return c
}

// branch walks one conditional arm from the current held set and restores
// it afterwards.
func (w *regionWalker) branch(saved map[types.Object]token.Pos, walk func()) {
	walk()
	restored := make(map[types.Object]token.Pos, len(saved))
	for o, p := range saved {
		restored[o] = p
	}
	w.held = restored
}

func (w *regionWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		saved := w.snapshot()
		w.branch(saved, func() { w.stmt(s.Body) })
		if s.Else != nil {
			w.branch(saved, func() { w.stmt(s.Else) })
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseClauses(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.caseClauses(s.Body)
	case *ast.SelectStmt:
		saved := w.snapshot()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.branch(saved, func() {
				w.stmt(cc.Comm)
				for _, st := range cc.Body {
					w.stmt(st)
				}
			})
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		saved := w.snapshot()
		w.branch(saved, func() { w.stmt(s.Body); w.stmt(s.Post) })
	case *ast.RangeStmt:
		w.expr(s.X)
		saved := w.snapshot()
		w.branch(saved, func() { w.stmt(s.Body) })
	case *ast.DeferStmt:
		// defer x.Unlock() keeps x held until return. Other deferred
		// calls run at return time, when the held set here no longer
		// applies; only a deferred closure's own body is analyzed (with
		// a fresh set, via the FuncLit case in expr).
		if obj, method := lockObj(w.pkg, s.Call); obj != nil &&
			(method == "Unlock" || method == "RUnlock") {
			return
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.funcLit(lit)
		}
	case *ast.GoStmt:
		// A spawned goroutine does not inherit our held set — but the spawn
		// itself is a handoff hazard: if the goroutine may (re)acquire a
		// lock the spawner still holds, and the spawner joins the pool
		// under that lock (worker fan-out, WaitGroup.Wait), the pair
		// deadlocks. Even read-read on an RWMutex wedges once a writer
		// queues between the two acquisitions. The morsel worker pool
		// depends on this: workers run under the *spawner's* statement
		// lock and must never touch db.mu themselves.
		if len(w.held) > 0 {
			w.checkSpawn(s)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.funcLit(lit)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	}
}

// checkSpawn flags a goroutine launched while locks are held whose body —
// or any function it statically reaches — may acquire one of those same
// locks. The spawned side's acquisitions are collected the same way
// per-function facts are: direct Lock/RLock calls plus the transitive
// may-acquire sets of module-internal callees.
func (w *regionWalker) checkSpawn(s *ast.GoStmt) {
	acquired := make(map[types.Object]token.Pos)
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, method := lockObj(w.pkg, call); obj != nil {
				if method == "Lock" || method == "RLock" {
					acquired[obj] = call.Pos()
				}
				return true
			}
			if fn := vet.CalleeFunc(w.pkg.Info, call); fn != nil {
				for o := range w.mayAcquire[fn] {
					acquired[o] = call.Pos()
				}
			}
			return true
		})
	} else if fn := vet.CalleeFunc(w.pkg.Info, s.Call); fn != nil {
		for o := range w.mayAcquire[fn] {
			acquired[o] = s.Call.Pos()
		}
	}
	for o, pos := range acquired {
		if _, heldHere := w.held[o]; !heldHere {
			continue
		}
		w.findings = append(w.findings, vet.Finding{
			Pos:      w.m.Fset.Position(pos),
			Analyzer: name,
			Message: fmt.Sprintf("goroutine spawned while %s is held may reacquire it — if the spawner joins under the lock the handoff deadlocks (a queued writer wedges even RLock/RLock); release first or keep the worker off the lock",
				lockLabel(w.m, o)),
		})
	}
}

func (w *regionWalker) caseClauses(body *ast.BlockStmt) {
	saved := w.snapshot()
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		w.branch(saved, func() {
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, st := range cc.Body {
				w.stmt(st)
			}
		})
	}
}

func (w *regionWalker) funcLit(lit *ast.FuncLit) {
	inner := &regionWalker{
		m: w.m, pkg: w.pkg, fns: w.fns,
		mayAcquire: w.mayAcquire, maySync: w.maySync, mayForeign: w.mayForeign,
		held: make(map[types.Object]token.Pos),
	}
	inner.walkBody(lit.Body)
	w.edges = append(w.edges, inner.edges...)
	w.findings = append(w.findings, inner.findings...)
}

// expr visits calls inside an expression in pre-order, diverting function
// literals to a fresh walker.
func (w *regionWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.funcLit(n)
			return false
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func (w *regionWalker) call(call *ast.CallExpr) {
	if obj, method := lockObj(w.pkg, call); obj != nil {
		switch method {
		case "Lock", "RLock":
			for held := range w.held {
				if held != obj {
					w.edges = append(w.edges, edge{
						from: held, to: obj, pos: call.Pos(),
						what: fmt.Sprintf("%s acquired while %s held", lockLabel(w.m, obj), lockLabel(w.m, held)),
					})
				}
			}
			w.held[obj] = call.Pos()
		case "Unlock", "RUnlock":
			delete(w.held, obj)
		}
		return
	}
	if len(w.held) == 0 {
		return
	}
	if ok, kind := isSyncCall(w.pkg, call); ok {
		w.reportHeld(call.Pos(), kind, "")
		return
	}
	fn := vet.CalleeFunc(w.pkg.Info, call)
	if fn == nil {
		return
	}
	if _, known := w.fns[fn]; !known {
		return
	}
	// The callee may release locks our caller holds (baton-passing in the
	// WAL writer); subtract before judging.
	effective := make(map[types.Object]token.Pos)
	for o, p := range w.held {
		if !w.mayForeign[fn][o] {
			effective[o] = p
		}
	}
	if len(effective) == 0 {
		return
	}
	if w.maySync[fn] {
		saved := w.held
		w.held = effective
		w.reportHeld(call.Pos(), "fsync/network I/O", " (via "+fn.Name()+")")
		w.held = saved
	}
	for o := range w.mayAcquire[fn] {
		for held := range effective {
			if held != o {
				w.edges = append(w.edges, edge{
					from: held, to: o, pos: call.Pos(),
					what: fmt.Sprintf("%s acquired (via %s) while %s held", lockLabel(w.m, o), fn.Name(), lockLabel(w.m, held)),
				})
			}
		}
	}
}

// reportHeld flags shared (RWMutex) locks held across slow I/O. Plain
// Mutexes are exempt by policy: a per-session or per-connection mutex
// serializes one caller's own pipeline, and that caller's commit
// naturally rides under it — the invariant protects locks with readers,
// which an fsync would stall engine-wide (the WAL group-commit contract).
func (w *regionWalker) reportHeld(pos token.Pos, kind, via string) {
	for o := range w.held {
		if !isRWMutex(o.Type()) {
			continue
		}
		w.findings = append(w.findings, vet.Finding{
			Pos:      w.m.Fset.Position(pos),
			Analyzer: name,
			Message:  fmt.Sprintf("lock %s held across %s%s — stage under the lock, sync off it", lockLabel(w.m, o), kind, via),
		})
	}
}

func isRWMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "RWMutex"
}

func lockLabel(m *vet.Module, obj types.Object) string {
	p := m.Fset.Position(obj.Pos())
	return fmt.Sprintf("%s (%s:%d)", obj.Name(), filepath.Base(p.Filename), p.Line)
}

// cycleFindings reports every edge that participates in a cycle of the
// global acquisition graph.
func cycleFindings(m *vet.Module, edges []edge) []vet.Finding {
	adj := make(map[types.Object]map[types.Object]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[types.Object]bool)
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{}
		var dfs func(types.Object) bool
		dfs = func(n types.Object) bool {
			if n == to {
				return true
			}
			if seen[n] {
				return false
			}
			seen[n] = true
			for next := range adj[n] {
				if dfs(next) {
					return true
				}
			}
			return false
		}
		return dfs(from)
	}
	var out []vet.Finding
	seen := map[string]bool{}
	for _, e := range edges {
		if !reaches(e.to, e.from) {
			continue
		}
		key := fmt.Sprintf("%v->%v@%v", e.from, e.to, e.pos)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, vet.Finding{
			Pos:      m.Fset.Position(e.pos),
			Analyzer: name,
			Message:  "lock acquisition order cycle: " + e.what + ", and the reverse order exists elsewhere",
		})
	}
	return out
}

//
// Mutex-bearing structs passed by value.
//

var lockBearingCache = make(map[types.Type]bool)

func lockBearing(t types.Type) bool {
	if v, ok := lockBearingCache[t]; ok {
		return v
	}
	lockBearingCache[t] = false // cycle guard
	v := lockBearingRec(t, 0)
	lockBearingCache[t] = v
	return v
}

func lockBearingRec(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Cond", "WaitGroup", "Once", "Map", "Pool":
				return true
			}
		}
		return lockBearingRec(t.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lockBearingRec(t.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return lockBearingRec(t.Elem(), depth+1)
	}
	return false
}

func copyLocks(m *vet.Module, pkg *vet.Package) []vet.Finding {
	var out []vet.Finding
	report := func(pos token.Pos, what string, t types.Type) {
		out = append(out, vet.Finding{
			Pos:      m.Fset.Position(pos),
			Analyzer: name,
			Message:  fmt.Sprintf("%s copies mutex-bearing struct %s — pass a pointer", what, types.TypeString(t, types.RelativeTo(pkg.Pkg))),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Type.Params != nil {
					for _, f := range n.Type.Params.List {
						if t := pkg.Info.Types[f.Type].Type; t != nil && lockBearing(t) {
							report(f.Pos(), "parameter", t)
						}
					}
				}
				if n.Type.Results != nil {
					for _, f := range n.Type.Results.List {
						if t := pkg.Info.Types[f.Type].Type; t != nil && lockBearing(t) {
							report(f.Pos(), "result", t)
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if !copiesValue(rhs) {
						continue
					}
					if t := pkg.Info.Types[rhs].Type; t != nil && lockBearing(t) {
						report(rhs.Pos(), "assignment", t)
					}
				}
			case *ast.RangeStmt:
				// A := range value is a definition, recorded in Defs rather
				// than Types.
				if n.Value != nil {
					t := pkg.Info.Types[n.Value].Type
					if id, ok := n.Value.(*ast.Ident); ok && t == nil {
						if obj := pkg.Info.Defs[id]; obj != nil {
							t = obj.Type()
						}
					}
					if t != nil && lockBearing(t) {
						report(n.Value.Pos(), "range value", t)
					}
				}
			}
			return true
		})
	}
	return out
}

// copiesValue reports whether an RHS expression copies an existing value
// (as opposed to constructing a fresh one or transferring a call result).
func copiesValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.MUL
	}
	return false
}

//
// Mixed atomic / non-atomic field access.
//

func atomicMix(m *vet.Module, pkg *vet.Package) []vet.Finding {
	// Pass 1: fields accessed through sync/atomic, and the spans of those
	// calls (accesses inside them are by definition atomic).
	atomicFields := make(map[types.Object]bool)
	type span struct{ lo, hi token.Pos }
	var atomicSpans []span
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := vet.CalleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			atomicSpans = append(atomicSpans, span{call.Pos(), call.End()})
			if len(call.Args) == 0 {
				return true
			}
			if ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if obj := vet.FieldObj(pkg.Info, ue.X); obj != nil {
					atomicFields[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	inAtomic := func(pos token.Pos) bool {
		for _, s := range atomicSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Pass 2: any other access to those fields. Composite-literal keys
	// (pre-publication initialization) are exempt.
	var out []vet.Finding
	for _, file := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			var obj types.Object
			var pos token.Pos
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pkg.Info.Selections[n]; ok {
					obj, pos = sel.Obj(), n.Sel.Pos()
				}
			case *ast.Ident:
				// Composite-literal keys resolve through Uses; skip them
				// via the parent check below like any other access.
				if len(stack) >= 2 {
					if kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr); ok && kv.Key == n {
						if len(stack) >= 3 {
							if _, isLit := stack[len(stack)-3].(*ast.CompositeLit); isLit {
								return true
							}
						}
					}
				}
				if _, isSel := parentIs[*ast.SelectorExpr](stack); isSel {
					return true // handled at the selector
				}
				obj, pos = pkg.Info.Uses[n], n.Pos()
			default:
				return true
			}
			if obj == nil || !atomicFields[obj] || inAtomic(pos) {
				return true
			}
			out = append(out, vet.Finding{
				Pos:      m.Fset.Position(pos),
				Analyzer: name,
				Message: fmt.Sprintf("field %s is accessed with sync/atomic elsewhere; this plain access races — use atomic.Load/Store",
					obj.Name()),
			})
			return true
		})
	}
	return out
}

// parentIs reports whether the direct parent node in the walk stack has
// type T.
func parentIs[T ast.Node](stack []ast.Node) (T, bool) {
	var zero T
	if len(stack) < 2 {
		return zero, false
	}
	p, ok := stack[len(stack)-2].(T)
	return p, ok
}
