// Package store holds the seeded locking violations for the lockorder
// golden test — an acquisition-order cycle, a reader-writer lock held
// across fsync, by-value mutex copies, a mixed atomic/plain field — next
// to the fixed and policy-exempt forms the analyzer must stay silent on.
package store

import (
	"os"
	"sync"
	"sync/atomic"
)

// Engine carries the fixture's locks.
type Engine struct {
	mu     sync.Mutex
	metaMu sync.Mutex
	rw     sync.RWMutex
	n      int
}

// lockAB acquires mu then metaMu; lockBA does the reverse — together a
// cycle in the global acquisition graph, reported at each edge.
func (e *Engine) lockAB() {
	e.mu.Lock()
	e.metaMu.Lock() // want "lock acquisition order cycle"
	e.metaMu.Unlock()
	e.mu.Unlock()
}

func (e *Engine) lockBA() {
	e.metaMu.Lock()
	e.mu.Lock() // want "lock acquisition order cycle"
	e.mu.Unlock()
	e.metaMu.Unlock()
}

// badCommit pays the fsync while holding a lock readers share.
func (e *Engine) badCommit(f *os.File) error {
	e.rw.Lock()
	defer e.rw.Unlock()
	return f.Sync() // want "lock rw .* held across fsync"
}

// stagedCommit is the fixed form: stage under the lock, sync off it.
func (e *Engine) stagedCommit(f *os.File) error {
	e.rw.Lock()
	e.n++
	e.rw.Unlock()
	return f.Sync()
}

// ownPipeline is exempt by policy: a plain Mutex serializes only its
// owner's pipeline, so the fsync stalls nobody else.
func (e *Engine) ownPipeline(f *os.File) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return f.Sync()
}

// quiesce mirrors the real repo's checkpoint exception: holding the
// reader-writer lock across the snapshot fsync is the point, and the
// justified annotation suppresses the finding.
func (e *Engine) quiesce(f *os.File) error {
	e.rw.Lock()
	defer e.rw.Unlock()
	//cryptdb:vet-ok lockorder: fixture mirror of the checkpoint quiesce exception
	return f.Sync()
}

// snapshotByValue copies the whole engine, mutexes included.
func snapshotByValue(e Engine) int { // want "parameter copies mutex-bearing struct Engine"
	return e.n
}

// deref copies an engine out of its pointer.
func deref(e *Engine) int {
	cp := *e // want "assignment copies mutex-bearing struct Engine"
	return cp.n
}

// rangeCopy copies each element while iterating.
func rangeCopy(engines []Engine) int {
	total := 0
	for _, ev := range engines { // want "range value copies mutex-bearing struct Engine"
		total += ev.n
	}
	return total
}

// spawnUnderLock launches a worker that reacquires the lock the spawner
// still holds — the worker-pool handoff deadlock (a queued writer wedges
// the pair even when both sides only read).
func (e *Engine) spawnUnderLock() {
	e.rw.RLock()
	done := make(chan struct{})
	go func() {
		e.rw.RLock() // want "goroutine spawned while rw .* is held may reacquire it"
		e.rw.RUnlock()
		close(done)
	}()
	<-done
	e.rw.RUnlock()
}

// reacquire is a named helper that takes the lock; spawning it under the
// same lock is the same hazard through a static call.
func (e *Engine) reacquire() {
	e.rw.RLock()
	e.rw.RUnlock()
}

func (e *Engine) spawnHelperUnderLock() {
	e.rw.RLock()
	go e.reacquire() // want "goroutine spawned while rw .* is held may reacquire it"
	e.rw.RUnlock()
}

// spawnOffLock is the fixed worker-pool form: workers run under the
// spawner's lock but never touch it themselves.
func (e *Engine) spawnOffLock() {
	e.rw.RLock()
	done := make(chan struct{})
	go func() {
		_ = e.n
		close(done)
	}()
	<-done
	e.rw.RUnlock()
}

// stats mixes an atomic increment with a plain read of the same field.
type stats struct {
	commits int64
}

func (s *stats) inc() { atomic.AddInt64(&s.commits, 1) }

func (s *stats) racyRead() int64 {
	return s.commits // want "field commits is accessed with sync/atomic elsewhere"
}

// safeRead is the fixed form.
func (s *stats) safeRead() int64 {
	return atomic.LoadInt64(&s.commits)
}
