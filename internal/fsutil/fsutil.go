// Package fsutil holds the small filesystem idioms the durability layer
// repeats: syncing a directory after a rename, and the full
// write-temp → sync → rename → sync-dir sequence that makes a small
// metadata file (a shard manifest, a key file) crash-atomic AND durable.
// os.WriteFile alone is neither: without an fsync the rename can be
// durable while the bytes are not, and a crash leaves a valid-looking
// empty file — which for a shard manifest silently misroutes every row.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// SyncDir fsyncs a directory, making a completed rename inside it
// durable. Errors are real: a missing directory or an EIO on the sync
// means the rename may not survive a crash.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsutil: opening dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("fsutil: syncing dir %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("fsutil: closing dir %s: %w", dir, cerr)
	}
	return nil
}

// InstallFile atomically and durably installs data at path: write to a
// temp file in the same directory, fsync it, rename over path, fsync the
// directory. Every error — including Close, where delayed write failures
// surface on some filesystems — is checked and returned.
func InstallFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("fsutil: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: installing %s: %w", path, err)
	}
	return SyncDir(dir)
}
