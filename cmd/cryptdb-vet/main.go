// cryptdb-vet is the repository's custom static-analysis driver. It
// loads every package of the module with the standard library's go/parser
// + go/types (no external tooling), runs the four CryptDB-specific
// analyzers — plaintextflow, lockorder, durabilityerr, cryptohygiene —
// and exits non-zero if any finding survives the annotation filter.
//
// Usage:
//
//	cryptdb-vet [-json] [patterns...]
//
// Patterns follow the go tool's shape: "./..." (default) analyzes the
// whole module, "./internal/store/..." a subtree, "./internal/sqldb" a
// single package. Findings print as file:line:col: [analyzer] message,
// or as one JSON object per line with -json.
//
// Deliberate exceptions are annotated in source with
// //cryptdb:sink-ok <reason> (plaintextflow) or
// //cryptdb:vet-ok <analyzer>: <reason>; an annotation with an empty
// reason is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/vet"
	"repro/internal/analysis/vet/suite"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryptdb-vet:", err)
		os.Exit(2)
	}

	m, err := vet.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryptdb-vet:", err)
		os.Exit(2)
	}
	findings := vet.Apply(m, suite.All())

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings = filterByPatterns(root, findings, patterns)

	for _, f := range findings {
		if *jsonOut {
			b, err := json.Marshal(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{relTo(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cryptdb-vet: encoding finding:", err)
				os.Exit(2)
			}
			fmt.Println(string(b))
		} else {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relTo(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cryptdb-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterByPatterns keeps findings whose file falls under one of the
// go-style package patterns, resolved relative to the module root.
func filterByPatterns(root string, findings []vet.Finding, patterns []string) []vet.Finding {
	cwd, _ := os.Getwd()
	var keep []vet.Finding
	for _, f := range findings {
		dir := filepath.Dir(f.Pos.Filename)
		for _, p := range patterns {
			if matchPattern(root, cwd, dir, p) {
				keep = append(keep, f)
				break
			}
		}
	}
	return keep
}

func matchPattern(root, cwd, dir, pattern string) bool {
	base := cwd
	if base == "" {
		base = root
	}
	recursive := false
	if strings.HasSuffix(pattern, "/...") {
		recursive = true
		pattern = strings.TrimSuffix(pattern, "/...")
	}
	if pattern == "." || pattern == "" {
		pattern = base
	} else if strings.HasPrefix(pattern, "./") || pattern == "." {
		pattern = filepath.Join(base, strings.TrimPrefix(pattern, "./"))
	} else if !filepath.IsAbs(pattern) {
		pattern = filepath.Join(base, pattern)
	}
	pattern = filepath.Clean(pattern)
	dir = filepath.Clean(dir)
	if recursive {
		return dir == pattern || strings.HasPrefix(dir, pattern+string(filepath.Separator))
	}
	return dir == pattern
}

func relTo(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}
