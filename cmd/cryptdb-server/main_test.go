package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/proxy"
	"repro/internal/sqldb"
)

// TestServeEndToEnd drives the line protocol over a real TCP connection.
func TestServeEndToEnd(t *testing.T) {
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn, p)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(sql string) []string {
		if _, err := fmt.Fprintf(conn, "%s\n", sql); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			line = strings.TrimSpace(line)
			lines = append(lines, line)
			if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR") {
				return lines
			}
		}
	}

	if got := send("CREATE TABLE t (a INT, b TEXT)"); got[0] != "OK 0" {
		t.Fatalf("create: %v", got)
	}
	if got := send("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"); got[0] != "OK 1" && got[0] != "OK 2" {
		t.Fatalf("insert: %v", got)
	}
	got := send("SELECT a, b FROM t WHERE b = 'y'")
	if len(got) != 2 || got[0] != "ROW 2\ty" || got[1] != "OK 1" {
		t.Fatalf("select: %v", got)
	}
	if got := send("SELECT broken FROM nosuch"); !strings.HasPrefix(got[0], "ERR") {
		t.Fatalf("error path: %v", got)
	}
	// The server's DBMS never sees plaintext.
	for _, tn := range db.TableNames() {
		res, err := db.ExecSQL("SELECT * FROM " + tn)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			for _, v := range row {
				if v.Kind == sqldb.KindText && (v.S == "x" || v.S == "y") {
					t.Fatalf("plaintext at server: %v", v)
				}
			}
		}
	}
}

// TestServeReportsScannerError sends a line over the 1 MiB scan buffer; the
// server must answer with ERR instead of silently closing the connection.
func TestServeReportsScannerError(t *testing.T) {
	p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn, p)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	huge := make([]byte, 1<<20+64) // one line, just over the buffer
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("connection closed without a response: %v", err)
	}
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("got %q, want ERR response", line)
	}
}
