package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/store/sharded"
)

// TestServeEndToEnd drives the line protocol over a real TCP connection.
func TestServeEndToEnd(t *testing.T) {
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn, p)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(sql string) []string {
		if _, err := fmt.Fprintf(conn, "%s\n", sql); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			line = strings.TrimSpace(line)
			lines = append(lines, line)
			if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR") {
				return lines
			}
		}
	}

	if got := send("CREATE TABLE t (a INT, b TEXT)"); got[0] != "OK 0" {
		t.Fatalf("create: %v", got)
	}
	if got := send("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"); got[0] != "OK 1" && got[0] != "OK 2" {
		t.Fatalf("insert: %v", got)
	}
	got := send("SELECT a, b FROM t WHERE b = 'y'")
	if len(got) != 2 || got[0] != "ROW 2\ty" || got[1] != "OK 1" {
		t.Fatalf("select: %v", got)
	}
	if got := send("SELECT broken FROM nosuch"); !strings.HasPrefix(got[0], "ERR") {
		t.Fatalf("error path: %v", got)
	}
	// The server's DBMS never sees plaintext.
	for _, tn := range db.TableNames() {
		res, err := db.ExecSQL("SELECT * FROM " + tn)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			for _, v := range row {
				if v.Kind == sqldb.KindText && (v.S == "x" || v.S == "y") {
					t.Fatalf("plaintext at server: %v", v)
				}
			}
		}
	}
}

// TestServeReportsScannerError sends a line over the 1 MiB scan buffer; the
// server must answer with ERR instead of silently closing the connection.
func TestServeReportsScannerError(t *testing.T) {
	p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn, p)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	huge := make([]byte, 1<<20+64) // one line, just over the buffer
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("connection closed without a response: %v", err)
	}
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("got %q, want ERR response", line)
	}
}

// sendLine issues one statement and reads through the OK/ERR terminator.
func sendLine(t *testing.T, conn net.Conn, r *bufio.Reader, sql string) []string {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", sql); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response to %q: %v", sql, err)
		}
		line = strings.TrimSpace(line)
		lines = append(lines, line)
		if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR") {
			return lines
		}
	}
}

// TestGracefulShutdownDrains: shutdown must stop accepting, let connected
// clients' in-flight work finish, flush the WAL and return.
func TestGracefulShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(config{addr: "127.0.0.1:0", dataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.run() }()

	conn, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	sendLine(t, conn, r, "CREATE TABLE t (a INT)")
	sendLine(t, conn, r, "INSERT INTO t (a) VALUES (42)")

	done := make(chan struct{})
	go func() {
		srv.shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	if err := <-runErr; err != nil {
		t.Fatalf("run returned %v", err)
	}
	// New connections must be refused.
	if c, err := net.DialTimeout("tcp", srv.ln.Addr().String(), time.Second); err == nil {
		c.Close()
		t.Fatal("server accepted a connection after shutdown")
	}
	// And the flushed state must be recoverable.
	db, err := sqldb.Open(dir, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p, err := proxy.New(db, proxy.Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 42 {
		t.Fatalf("state after graceful shutdown: %v", res.Rows)
	}
}

// TestHelperServerProcess is not a test: it is the child body for the
// SIGKILL end-to-end test below, selected via environment variable.
func TestHelperServerProcess(t *testing.T) {
	if os.Getenv("CRYPTDB_SERVER_CHILD") != "1" {
		t.Skip("helper process")
	}
	srv, err := newServer(config{addr: "127.0.0.1:0", dataDir: os.Getenv("CRYPTDB_SERVER_DIR")})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(1)
	}
	// Hand the dynamically chosen address to the parent.
	fmt.Printf("ADDR %s\n", srv.ln.Addr())
	os.Stdout.Sync()
	srv.run() //nolint:errcheck // killed by the parent
}

// TestServerSurvivesSIGKILL is the acceptance scenario for the durability
// subsystem, end to end and out of process: a real cryptdb-server with a
// data dir is loaded with encrypted rows (including an OPE-adjusted
// column), killed with SIGKILL — no shutdown hooks — restarted, and must
// serve identical SELECT results.
func TestServerSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()

	startChild := func() (*exec.Cmd, net.Conn, *bufio.Reader) {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperServerProcess")
		cmd.Env = append(os.Environ(), "CRYPTDB_SERVER_CHILD=1", "CRYPTDB_SERVER_DIR="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		var addr string
		for sc.Scan() {
			if s, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addr = s
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatal("child never reported its address")
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			cmd.Process.Kill()
			t.Fatal(err)
		}
		return cmd, conn, bufio.NewReader(conn)
	}

	cmd, conn, r := startChild()
	sendLine(t, conn, r, "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, salary INT)")
	sendLine(t, conn, r, "INSERT INTO emp (id, name, salary) VALUES (1, 'alice', 100), (2, 'bob', 200), (3, 'carol', 300)")
	// Range query peels the Ord onion RND -> OPE before the kill.
	want := sendLine(t, conn, r, "SELECT name FROM emp WHERE salary > 150 ORDER BY salary")
	wantEq := sendLine(t, conn, r, "SELECT salary FROM emp WHERE name = 'bob'")
	conn.Close()

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // killed: non-zero by design

	cmd2, conn2, r2 := startChild()
	defer func() {
		conn2.Close()
		cmd2.Process.Kill() //nolint:errcheck
		cmd2.Wait()         //nolint:errcheck
	}()
	got := sendLine(t, conn2, r2, "SELECT name FROM emp WHERE salary > 150 ORDER BY salary")
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("after SIGKILL restart:\ngot  %v\nwant %v", got, want)
	}
	gotEq := sendLine(t, conn2, r2, "SELECT salary FROM emp WHERE name = 'bob'")
	if strings.Join(gotEq, "|") != strings.Join(wantEq, "|") {
		t.Fatalf("equality after SIGKILL restart:\ngot  %v\nwant %v", gotEq, wantEq)
	}
	// The restarted server keeps writing under the same keys.
	if got := sendLine(t, conn2, r2, "INSERT INTO emp (id, name, salary) VALUES (4, 'dave', 250)"); got[0] != "OK 1" {
		t.Fatalf("insert after restart: %v", got)
	}
	got = sendLine(t, conn2, r2, "SELECT name FROM emp WHERE salary > 150 ORDER BY salary")
	if want := []string{"ROW bob", "ROW dave", "ROW carol", "OK 3"}; strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("mixed rows after restart:\ngot  %v\nwant %v", got, want)
	}
}

// TestDisconnectMidTxnAutoRollback is the regression test for the stuck
// transaction latch: in the seed, a client that dropped its connection
// inside BEGIN left the single global transaction open forever, wedging
// every other writer. Now the connection's session rolls back on close.
func TestDisconnectMidTxnAutoRollback(t *testing.T) {
	srv, err := newServer(config{addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.run() }()
	defer func() {
		srv.shutdown()
		<-runErr
	}()

	dial := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", srv.ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return conn, bufio.NewReader(conn)
	}

	c0, r0 := dial()
	defer c0.Close()
	sendLine(t, c0, r0, "CREATE TABLE t (a INT)")
	sendLine(t, c0, r0, "INSERT INTO t (a) VALUES (1)")

	// Connection drops mid-transaction with a buffered write and a lock.
	c1, r1 := dial()
	sendLine(t, c1, r1, "BEGIN")
	sendLine(t, c1, r1, "INSERT INTO t (a) VALUES (100)")
	sendLine(t, c1, r1, "UPDATE t SET a = 2 WHERE a = 1")
	c1.Close()

	// The buffered write must vanish and the lock must come free. Poll
	// briefly: the server notices the close asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := sendLine(t, c0, r0, "UPDATE t SET a = 3 WHERE a = 1")
		if got[0] == "OK 1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock never released after disconnect: %v", got)
		}
		time.Sleep(20 * time.Millisecond)
	}
	got := sendLine(t, c0, r0, "SELECT COUNT(*) FROM t")
	if len(got) != 2 || got[0] != "ROW 1" {
		t.Fatalf("buffered insert leaked past disconnect: %v", got)
	}

	// And a fresh connection can open its own transaction immediately —
	// the seed would have hung here on the latched global txnMu.
	c2, r2 := dial()
	defer c2.Close()
	sendLine(t, c2, r2, "BEGIN")
	sendLine(t, c2, r2, "INSERT INTO t (a) VALUES (7)")
	if got := sendLine(t, c2, r2, "COMMIT"); got[0] != "OK 0" {
		t.Fatalf("commit on fresh connection: %v", got)
	}
}

// TestConcurrentSessionsOverTCP: two live connections hold transactions at
// the same time — impossible in the seed, where the second BEGIN blocked.
func TestConcurrentSessionsOverTCP(t *testing.T) {
	srv, err := newServer(config{addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.run() }()
	defer func() {
		srv.shutdown()
		<-runErr
	}()

	dial := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", srv.ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return conn, bufio.NewReader(conn)
	}
	c0, r0 := dial()
	defer c0.Close()
	sendLine(t, c0, r0, "CREATE TABLE t (k INT, v INT)")

	c1, r1 := dial()
	defer c1.Close()
	c2, r2 := dial()
	defer c2.Close()
	sendLine(t, c1, r1, "BEGIN")
	sendLine(t, c2, r2, "BEGIN") // would block forever in the seed
	sendLine(t, c1, r1, "INSERT INTO t (k, v) VALUES (1, 10)")
	sendLine(t, c2, r2, "INSERT INTO t (k, v) VALUES (2, 20)")
	if got := sendLine(t, c1, r1, "COMMIT"); got[0] != "OK 0" {
		t.Fatalf("c1 commit: %v", got)
	}
	if got := sendLine(t, c2, r2, "COMMIT"); got[0] != "OK 0" {
		t.Fatalf("c2 commit: %v", got)
	}
	got := sendLine(t, c0, r0, "SELECT COUNT(*) FROM t")
	if len(got) != 2 || got[0] != "ROW 2" {
		t.Fatalf("both transactions should have committed: %v", got)
	}
}

// TestMaxSessions: connections beyond -max-sessions are refused with an
// explanatory ERR line, and capacity frees up when a session closes.
func TestMaxSessions(t *testing.T) {
	srv, err := newServer(config{addr: "127.0.0.1:0", maxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.run() }()
	defer func() {
		srv.shutdown()
		<-runErr
	}()

	c1, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	r1 := bufio.NewReader(c1)
	sendLine(t, c1, r1, "CREATE TABLE t (a INT)") // session 1 is live

	c2, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(c2).ReadString('\n')
	c2.Close()
	if err != nil || !strings.HasPrefix(line, "ERR") || !strings.Contains(line, "max-sessions") {
		t.Fatalf("over-capacity connection: line=%q err=%v, want ERR max-sessions", line, err)
	}

	// Freeing the slot admits the next client.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := net.Dial("tcp", srv.ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		r3 := bufio.NewReader(c3)
		if _, err := fmt.Fprintf(c3, "SELECT COUNT(*) FROM t\n"); err != nil {
			t.Fatal(err)
		}
		line, err := r3.ReadString('\n')
		c3.Close()
		if err == nil && strings.HasPrefix(line, "ROW") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity never freed: line=%q err=%v", line, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMultiModeDisconnectMidTxn: multi-principal mode also gives each
// connection its own transaction scope; a dropped connection must not
// wedge the shared manager (the seed-era stuck-latch bug, -multi flavor).
func TestMultiModeDisconnectMidTxn(t *testing.T) {
	srv, err := newServer(config{addr: "127.0.0.1:0", multi: true})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.run() }()
	defer func() {
		srv.shutdown()
		<-runErr
	}()

	dial := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", srv.ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return conn, bufio.NewReader(conn)
	}
	c0, r0 := dial()
	defer c0.Close()
	sendLine(t, c0, r0, "CREATE TABLE t (a INT)")

	c1, r1 := dial()
	sendLine(t, c1, r1, "BEGIN")
	sendLine(t, c1, r1, "INSERT INTO t (a) VALUES (1)")
	c1.Close() // vanish mid-transaction

	deadline := time.Now().Add(5 * time.Second)
	for {
		got := sendLine(t, c0, r0, "BEGIN")
		if got[0] == "OK 0" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("BEGIN never recovered after -multi disconnect: %v", got)
		}
		time.Sleep(20 * time.Millisecond)
	}
	sendLine(t, c0, r0, "INSERT INTO t (a) VALUES (2)")
	if got := sendLine(t, c0, r0, "COMMIT"); got[0] != "OK 0" {
		t.Fatalf("commit: %v", got)
	}
	got := sendLine(t, c0, r0, "SELECT COUNT(*) FROM t")
	if len(got) != 2 || got[0] != "ROW 1" {
		t.Fatalf("ghost insert leaked or commit lost: %v", got)
	}
}

// TestShardedServerEndToEnd runs the server over a durable 3-shard store:
// statements spread across shards behind the proxy, per-connection
// transactions stay single-shard, and a restart recovers every shard.
func TestShardedServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(config{addr: "127.0.0.1:0", dataDir: dir, shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.run() }()

	conn, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	sendLine(t, conn, r, "CREATE TABLE t (k TEXT, n INT)")
	for i := 1; i <= 12; i++ {
		sendLine(t, conn, r, fmt.Sprintf("INSERT INTO t (k, n) VALUES ('k%02d', %d)", i, i))
	}
	sendLine(t, conn, r, "BEGIN")
	sendLine(t, conn, r, "INSERT INTO t (k, n) VALUES ('txn', 99)")
	sendLine(t, conn, r, "ROLLBACK")
	lines := sendLine(t, conn, r, "SELECT n FROM t WHERE n >= 5 AND n <= 8")
	if len(lines) != 5 { // 4 ROW + OK
		t.Fatalf("range query over shards returned %v", lines)
	}
	lines = sendLine(t, conn, r, "SELECT COUNT(*) FROM t")
	if len(lines) != 2 || lines[0] != "ROW 12" {
		t.Fatalf("COUNT over shards returned %v", lines)
	}

	srv.shutdown()
	if err := <-runErr; err != nil {
		t.Fatalf("run returned %v", err)
	}

	// Restart: the engine must reopen all three shards and the proxy must
	// recover its onion levels.
	eng, err := sharded.Open(dir, 0, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() != 3 {
		t.Fatalf("reopened with %d shards", eng.Shards())
	}
	p, err := proxy.NewOnEngine(eng, proxy.Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 12 {
		t.Fatalf("recovered COUNT = %v, want 12", res.Rows)
	}
}

// TestShardedDirLayoutWinsOverFlags: a sharded data directory reopened
// without -shards must come back sharded (the manifest pins the count);
// an explicit mismatching -shards must fail; and a single-store directory
// must refuse -shards entirely. Any of these mistakes would otherwise
// silently serve an empty database.
func TestShardedDirLayoutWinsOverFlags(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(config{addr: "127.0.0.1:0", dataDir: dir, shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.run() }()
	conn, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	sendLine(t, conn, r, "CREATE TABLE t (a INT)")
	sendLine(t, conn, r, "INSERT INTO t (a) VALUES (7)")
	conn.Close()
	srv.shutdown()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}

	// Reopen with the flag defaults (shards: 1): manifest must win.
	srv, err = newServer(config{addr: "127.0.0.1:0", dataDir: dir, shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.eng.Shards(); got != 3 {
		t.Fatalf("reopened with %d shards, manifest says 3", got)
	}
	go func() { runErr <- srv.run() }()
	conn, err = net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r = bufio.NewReader(conn)
	lines := sendLine(t, conn, r, "SELECT a FROM t")
	if len(lines) != 2 || lines[0] != "ROW 7" {
		t.Fatalf("data lost across flagless reopen: %v", lines)
	}
	conn.Close()
	srv.shutdown()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}

	// Explicit mismatching count: refuse.
	if _, err := newServer(config{addr: "127.0.0.1:0", dataDir: dir, shards: 2}); err == nil {
		t.Fatal("mismatching -shards accepted")
	}

	// A single-store directory cannot be reinterpreted as sharded.
	sdir := t.TempDir()
	srv, err = newServer(config{addr: "127.0.0.1:0", dataDir: sdir})
	if err != nil {
		t.Fatal(err)
	}
	go func() { runErr <- srv.run() }()
	srv.shutdown()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(config{addr: "127.0.0.1:0", dataDir: sdir, shards: 4}); err == nil {
		t.Fatal("single-store dir accepted -shards 4")
	}
}
