// Command cryptdb-server exposes the CryptDB proxy over TCP with a simple
// line protocol, playing the role of the proxy server machine in Figure 1:
// applications connect and speak SQL; the embedded DBMS behind the proxy
// only ever sees ciphertext.
//
// Protocol: one SQL statement per line. Responses:
//
//	OK <n>              for writes (n rows affected)
//	ROW <tab-separated> for each result row, then OK <n>
//	ERR <message>       on error
//
// Usage:
//
//	cryptdb-server [-addr :7432] [-multi] [-data-dir DIR] [-shards N]
//	               [-wal-nofsync] [-checkpoint-mb N] [-max-sessions N]
//	               [-replicate-to ADDR] [-replica-of ADDR]
//
// Each TCP connection gets its own proxy session: BEGIN/COMMIT/ROLLBACK
// scope to the connection that issued them, concurrent connections hold
// independent transactions, and a connection that drops mid-transaction is
// rolled back automatically. -max-sessions caps concurrent connections
// (0 = unlimited); beyond the cap new connections are refused with an ERR
// line rather than queued.
//
// With -multi the server runs in multi-principal mode: PRINCTYPE / ENC FOR /
// SPEAKS FOR annotations are honored and cryptdb_active logins intercepted.
// Connections still get private transaction scope (one mp session each);
// login and key-chaining state stays global across connections, matching
// §4.2's per-user (not per-connection) key model.
//
// With -data-dir the instance is durable: the embedded DBMS keeps a
// write-ahead log and snapshots under DIR, and the proxy persists its key
// material and sealed onion metadata there too, so a restarted server —
// even one killed with SIGKILL — serves exactly the rows and onion levels
// it had before. SIGINT/SIGTERM trigger a graceful shutdown: the listener
// closes, in-flight statements finish and their responses flush, then the
// WAL syncs and the process exits.
//
// With -shards N the store is hash-partitioned across N embedded DBMS
// instances, each with its own WAL and group-commit stream (under
// DIR/shard-000/ ... when durable): rows are placed by hash of the hidden
// row id, reads scatter-gather, and write throughput scales with the shard
// count. The shard count of a durable directory is fixed at creation
// (recorded in DIR/sharded.json); reopening with a different -shards fails
// rather than misroute rows.
//
// With -replicate-to ADDR the server additionally listens on ADDR for
// replication followers and ships every shard's write-ahead log to them
// asynchronously (commits never wait on a follower). With -replica-of ADDR
// the server is a read-only follower of the primary at ADDR: it mirrors
// the primary's topology (probed over the wire), replays its WAL stream —
// sealed proxy metadata included — and serves SELECTs against the replayed
// ciphertext; every write gets an ERR naming the primary to send it to.
// Both require -data-dir, and a follower's data dir must contain a copy of
// the primary's proxy-keys.json (the proxy cannot unseal replicated
// metadata without it).
//
// Try it:
//
//	printf 'CREATE TABLE t (a INT, b TEXT)\nINSERT INTO t (a, b) VALUES (1, %s)\nSELECT * FROM t\n' "'x'" | nc localhost 7432
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/mp"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/store/replicated"
	"repro/internal/store/sharded"
	"repro/internal/store/single"
	"repro/internal/workload"
)

// drainTimeout bounds how long a graceful shutdown waits for in-flight
// connections before closing them forcibly.
const drainTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", ":7432", "listen address")
	multi := flag.Bool("multi", false, "enable multi-principal mode (§4)")
	dataDir := flag.String("data-dir", "", "directory for durable state (WAL, snapshots, proxy keys); empty runs in-memory")
	shards := flag.Int("shards", 1, "number of store shards (hash-partitioned by hidden row id); a durable directory fixes the count at creation")
	noFsync := flag.Bool("wal-nofsync", false, "skip fsync after each commit (faster; a machine crash may lose recent commits)")
	checkpointMB := flag.Int64("checkpoint-mb", 4, "WAL size in MiB that triggers an automatic snapshot; 0 disables")
	paged := flag.Bool("paged", false, "store rows in on-disk page segments behind a byte-budgeted buffer cache, so data may exceed RAM (requires -data-dir); an existing directory's layout always wins")
	cacheMB := flag.Int64("cache-mb", 64, "paged-mode buffer-cache budget in MiB, split evenly across shards; ignored without -paged (or a paged directory)")
	maxSessions := flag.Int("max-sessions", 0, "maximum concurrent client sessions; 0 = unlimited")
	replicateTo := flag.String("replicate-to", "", "also listen on this address for replication followers and ship the WAL to them (requires -data-dir)")
	replicaOf := flag.String("replica-of", "", "run as a read-only follower of the primary at this address (requires -data-dir with the primary's proxy-keys.json)")
	execWorkers := flag.Int("exec-workers", 0, "intra-query worker count for compiled execution (morsel parallelism), per statement; 0 = GOMAXPROCS, 1 = serial")
	flag.Parse()

	// Set before the engine opens so every database the process creates —
	// shards, replication followers, gather temporaries — inherits it.
	sqldb.SetDefaultExecWorkers(*execWorkers)

	srv, err := newServer(config{
		addr:         *addr,
		multi:        *multi,
		dataDir:      *dataDir,
		shards:       *shards,
		noFsync:      *noFsync,
		checkpointMB: *checkpointMB,
		paged:        *paged,
		cacheMB:      *cacheMB,
		maxSessions:  *maxSessions,
		replicateTo:  *replicateTo,
		replicaOf:    *replicaOf,
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := "in-memory"
	if *dataDir != "" {
		mode = "durable, data-dir=" + *dataDir
	}
	if n := srv.eng.Shards(); n > 1 {
		mode += fmt.Sprintf(", %d shards", n)
	}
	if b := srv.eng.Stats().Cache.BudgetBytes; b > 0 {
		mode += fmt.Sprintf(", paged (cache %d MiB)", b>>20)
	}
	if *replicaOf != "" {
		mode += ", read-only replica of " + *replicaOf
	} else if pe, ok := srv.eng.(*replicated.PrimaryEngine); ok {
		mode += ", replicating on " + pe.Addr()
	}
	log.Printf("cryptdb-server listening on %s (multi-principal: %v, %s)", srv.ln.Addr(), *multi, mode)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("received %v, shutting down", sig)
		srv.shutdown()
	}()

	if err := srv.run(); err != nil {
		log.Fatal(err)
	}
	log.Printf("cryptdb-server: shutdown complete")
}

type config struct {
	addr         string
	multi        bool
	dataDir      string
	shards       int
	noFsync      bool
	checkpointMB int64
	paged        bool
	cacheMB      int64
	maxSessions  int
	replicateTo  string
	replicaOf    string
}

// durability translates the flag values into engine options. The cache
// budget here is the whole engine's; openEngine splits it across shards.
func (cfg config) durability() sqldb.DurabilityOptions {
	cb := cfg.checkpointMB << 20
	if cb == 0 {
		cb = -1 // flag semantics: 0 disables auto-checkpoints
	}
	return sqldb.DurabilityOptions{
		NoFsync:         cfg.noFsync,
		CheckpointBytes: cb,
		Paged:           cfg.paged,
		CacheBytes:      cfg.cacheMB << 20,
	}
}

// splitCache divides the engine-wide cache budget across n shards.
func splitCache(dopts sqldb.DurabilityOptions, n int) sqldb.DurabilityOptions {
	if n > 1 && dopts.CacheBytes > 0 {
		dopts.CacheBytes /= int64(n)
	}
	return dopts
}

// server owns the listener, the executor stack (proxy or multi-principal
// wrapper) and the durable database, and coordinates graceful shutdown.
// Every connection executes on its own session (a proxy.Session, or an
// mp.Session sharing the manager's global login state in -multi mode), so
// transaction scope follows the connection.
type server struct {
	ln  net.Listener
	ex  workload.Executor
	px  *proxy.Proxy // nil in multi-principal mode
	mp  *mp.Manager  // nil in single-principal mode
	eng store.Engine

	maxSessions int

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
	done     chan struct{}
}

func newServer(cfg config) (*server, error) {
	if cfg.replicateTo != "" && cfg.replicaOf != "" {
		return nil, fmt.Errorf("-replicate-to and -replica-of are mutually exclusive")
	}
	if (cfg.replicateTo != "" || cfg.replicaOf != "") && cfg.dataDir == "" {
		return nil, fmt.Errorf("replication requires -data-dir (the WAL is the replication stream)")
	}
	if cfg.replicaOf != "" && cfg.multi {
		return nil, fmt.Errorf("-replica-of cannot be combined with -multi (followers are read-only)")
	}
	if cfg.replicaOf != "" && cfg.shards > 1 {
		return nil, fmt.Errorf("-replica-of determines the shard count from the primary; drop -shards")
	}
	if cfg.paged && cfg.dataDir == "" {
		return nil, fmt.Errorf("-paged requires -data-dir (pages live in on-disk segment files)")
	}
	eng, err := openEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.replicateTo != "" {
		pe, err := replicated.WrapPrimary(eng, cfg.replicateTo)
		if err != nil {
			eng.Close()
			return nil, err
		}
		eng = pe
	}
	p, err := proxy.NewOnEngine(eng, proxy.Options{DataDir: cfg.dataDir})
	if err != nil {
		eng.Close()
		return nil, err
	}
	var ex workload.Executor = p
	px := p
	var mpm *mp.Manager
	if cfg.multi {
		mpm = mp.New(p, mp.Options{})
		ex = mpm
		px = nil // connections get mp sessions instead
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &server{
		ln:          ln,
		ex:          ex,
		px:          px,
		mp:          mpm,
		eng:         eng,
		maxSessions: cfg.maxSessions,
		conns:       make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
	}, nil
}

// openEngine builds the storage engine the configuration asks for: one
// embedded sqldb (in-memory or durable), or a hash-partitioned sharded
// store. An existing data directory's layout wins over the flags: a
// sharded directory reopened without -shards comes back sharded (its
// manifest pins the count), and a single-store directory cannot be
// reinterpreted as sharded — either mistake would silently serve an
// empty database.
func openEngine(cfg config) (store.Engine, error) {
	dopts := cfg.durability()
	if cfg.replicaOf != "" {
		// Follower topology mirrors the primary's, probed over the wire;
		// local flags cannot override it.
		return replicated.OpenFollower(cfg.dataDir, cfg.replicaOf, dopts)
	}
	if cfg.dataDir != "" {
		manifestShards, isSharded := sharded.DirShards(cfg.dataDir)
		if isSharded {
			if cfg.shards > 1 && manifestShards > 0 && cfg.shards != manifestShards {
				return nil, fmt.Errorf("data dir %s has %d shards, -shards=%d", cfg.dataDir, manifestShards, cfg.shards)
			}
			n := cfg.shards
			if n <= 1 {
				n = 0 // accept the manifest's count
			}
			// An unreadable manifest (manifestShards == 0) falls through to
			// Open, which fails loudly rather than serving an empty store.
			return sharded.Open(cfg.dataDir, n, splitCache(dopts, manifestShards))
		}
		if cfg.shards > 1 {
			if _, err := os.Stat(filepath.Join(cfg.dataDir, "wal.log")); err == nil {
				return nil, fmt.Errorf("data dir %s holds a single (unsharded) store; it cannot be reopened with -shards %d", cfg.dataDir, cfg.shards)
			}
			return sharded.Open(cfg.dataDir, cfg.shards, splitCache(dopts, cfg.shards))
		}
		return single.Open(cfg.dataDir, dopts)
	}
	if cfg.shards > 1 {
		return sharded.New(cfg.shards), nil
	}
	return single.New(sqldb.New()), nil
}

// run accepts connections until shutdown, then drains and flushes.
func (s *server) run() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isDraining() {
				break
			}
			log.Printf("accept: %v", err)
			continue
		}
		if !s.track(conn) {
			// Raced with shutdown, or the session cap is reached: tell the
			// client why instead of silently dropping the connection.
			if !s.isDraining() {
				fmt.Fprintf(conn, "ERR server at max-sessions capacity (%d)\n", s.maxSessions)
			}
			conn.Close() //cryptdb:vet-ok durabilityerr: refused connection carries no durable state; nothing to report to
			continue
		}
		go func() {
			defer s.untrack(conn)
			// One session per connection: transaction scope follows the
			// connection, and closing the session rolls back anything the
			// client left open (disconnect mid-transaction included).
			ex := s.ex
			switch {
			case s.px != nil:
				sess := s.px.NewSession()
				defer sess.Close()
				ex = sess
			case s.mp != nil:
				sess := s.mp.NewSession()
				defer sess.Close()
				ex = sess
			}
			serve(conn, ex)
		}()
	}

	// Drain: every tracked connection got a read deadline in the past, so
	// idle scanners unblock immediately while a statement mid-execution
	// finishes and flushes its response first.
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(drainTimeout):
		log.Printf("drain timeout after %v; closing remaining connections", drainTimeout)
		s.mu.Lock()
		for c := range s.conns {
			c.Close() //cryptdb:vet-ok durabilityerr: forced teardown after drain timeout; the engine Close below is the durability point
		}
		s.mu.Unlock()
		<-drained
	}

	// Report engine-wide work before closing: counters sum across every
	// shard (reading shard 0 alone would under-report).
	st := s.eng.Stats()
	log.Printf("cryptdb-server: store stats: shards=%d wal-batches=%d wal-syncs=%d checkpoints=%d size=%dB busy=%dms parallel-pipelines=%d morsels=%d exec-workers=%d",
		st.Shards, st.WAL.Batches, st.WAL.Syncs, st.WAL.Checkpoints, st.SizeBytes, st.BusyNanos/1e6,
		st.Plan.ParallelPipelines, st.Plan.Morsels, st.Plan.ExecWorkers)
	for _, f := range st.Followers {
		log.Printf("cryptdb-server: follower %s shard %d: acked seq %d of %d (lag %d)",
			f.Remote, f.Shard, f.AckedSeq, f.PrimarySeq, f.PrimarySeq-f.AckedSeq)
	}

	// Flush durable state last: after this returns, everything committed
	// is on disk.
	err := s.eng.Close()
	close(s.done)
	return err
}

// shutdown stops accepting and nudges every connection to finish. Safe to
// call more than once; returns after run completes the drain.
func (s *server) shutdown() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	for c := range s.conns {
		// Interrupt the next read without cutting the write side: the
		// in-flight statement's response still flushes.
		c.SetReadDeadline(time.Now()) //nolint:errcheck // best effort
	}
	s.mu.Unlock()
	if !already {
		s.ln.Close() //cryptdb:vet-ok durabilityerr: closing the listener only unblocks Accept; no data rides it
	}
	<-s.done
}

func (s *server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	if s.maxSessions > 0 && len(s.conns) >= s.maxSessions {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

func serve(conn net.Conn, ex workload.Executor) {
	defer conn.Close()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	defer out.Flush()

	for in.Scan() {
		sql := strings.TrimSpace(in.Text())
		if sql == "" {
			continue
		}
		if strings.EqualFold(sql, "quit") {
			return
		}
		res, err := ex.Execute(sql)
		if err != nil {
			fmt.Fprintf(out, "ERR %v\n", err)
			if out.Flush() != nil {
				return // write side is dead; stop serving the connection
			}
			continue
		}
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			// Rows decrypt at the proxy and return to the client in the
			// clear — this IS the trusted side of the CryptDB boundary.
			fmt.Fprintf(out, "ROW %s\n", strings.Join(parts, "\t")) //cryptdb:sink-ok plaintext results return to the trusted client side of the proxy boundary
		}
		n := res.Affected
		if len(res.Rows) > 0 {
			n = len(res.Rows)
		}
		fmt.Fprintf(out, "OK %d\n", n) //cryptdb:sink-ok row count only; and the client side is trusted
		if out.Flush() != nil {
			return // client hung up mid-result; nothing left to serve
		}
	}
	// A scan failure (e.g. a line over the 1 MiB buffer) would otherwise
	// close the connection silently; tell the client why. Deadline errors
	// are the shutdown path nudging idle readers — not worth reporting.
	// Drain what is left of the offending input first: closing a socket
	// with unread bytes queued can RST the ERR line away before the
	// client reads it.
	if err := in.Err(); err != nil && !os.IsTimeout(err) {
		fmt.Fprintf(out, "ERR %v\n", err)
		if out.Flush() != nil {
			return // both directions dead; skip the drain
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		io.Copy(io.Discard, conn) //nolint:errcheck // best-effort drain
	}
}
