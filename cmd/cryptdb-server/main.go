// Command cryptdb-server exposes the CryptDB proxy over TCP with a simple
// line protocol, playing the role of the proxy server machine in Figure 1:
// applications connect and speak SQL; the embedded DBMS behind the proxy
// only ever sees ciphertext.
//
// Protocol: one SQL statement per line. Responses:
//
//	OK <n>              for writes (n rows affected)
//	ROW <tab-separated> for each result row, then OK <n>
//	ERR <message>       on error
//
// Usage:
//
//	cryptdb-server [-addr :7432] [-multi]
//
// With -multi the server runs in multi-principal mode: PRINCTYPE / ENC FOR /
// SPEAKS FOR annotations are honored and cryptdb_active logins intercepted.
//
// Try it:
//
//	printf 'CREATE TABLE t (a INT, b TEXT)\nINSERT INTO t (a, b) VALUES (1, %s)\nSELECT * FROM t\n' "'x'" | nc localhost 7432
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"time"

	"repro/internal/mp"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7432", "listen address")
	multi := flag.Bool("multi", false, "enable multi-principal mode (§4)")
	flag.Parse()

	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var ex workload.Executor = p
	if *multi {
		ex = mp.New(p, mp.Options{})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("cryptdb-server listening on %s (multi-principal: %v)", *addr, *multi)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(conn, ex)
	}
}

func serve(conn net.Conn, ex workload.Executor) {
	defer conn.Close()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	defer out.Flush()

	for in.Scan() {
		sql := strings.TrimSpace(in.Text())
		if sql == "" {
			continue
		}
		if strings.EqualFold(sql, "quit") {
			return
		}
		res, err := ex.Execute(sql)
		if err != nil {
			fmt.Fprintf(out, "ERR %v\n", err)
			out.Flush()
			continue
		}
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Fprintf(out, "ROW %s\n", strings.Join(parts, "\t"))
		}
		n := res.Affected
		if len(res.Rows) > 0 {
			n = len(res.Rows)
		}
		fmt.Fprintf(out, "OK %d\n", n)
		out.Flush()
	}
	// A scan failure (e.g. a line over the 1 MiB buffer) would otherwise
	// close the connection silently; tell the client why. Drain what is
	// left of the offending input first: closing a socket with unread
	// bytes queued can RST the ERR line away before the client reads it.
	if err := in.Err(); err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		out.Flush()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		io.Copy(io.Discard, conn) //nolint:errcheck // best-effort drain
	}
}
