package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Machine-readable figure output. With -json, every arm a figure measures
// is also recorded here and flushed to BENCH_<fig>.json after the figure
// completes, so plotting scripts and CI trend checks don't have to parse
// the human tables.

// benchArm is one measured configuration of a figure.
type benchArm struct {
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// benchRecord is the BENCH_<fig>.json document.
type benchRecord struct {
	Figure     string     `json:"figure"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Arms       []benchArm `json:"arms"`
}

var (
	jsonEnabled bool
	jsonArms    []benchArm
)

// recordArm appends one measured arm to the pending record. Figures call it
// unconditionally; it is a no-op without -json.
func recordArm(name string, nsPerOp, rowsPerSec float64) {
	if !jsonEnabled {
		return
	}
	jsonArms = append(jsonArms, benchArm{Name: name, NsPerOp: nsPerOp, RowsPerSec: rowsPerSec})
}

// flushJSON writes BENCH_<fig>.json if -json is set and the figure recorded
// any arms, then resets the pending record for the next figure.
func flushJSON(fig string) error {
	if !jsonEnabled || len(jsonArms) == 0 {
		return nil
	}
	rec := benchRecord{Figure: fig, GOMAXPROCS: runtime.GOMAXPROCS(0), Arms: jsonArms}
	jsonArms = nil
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal BENCH_%s.json: %w", fig, err)
	}
	name := "BENCH_" + fig + ".json"
	if err := os.WriteFile(name, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", name, err)
	}
	fmt.Printf("wrote %s\n", name)
	return nil
}
