package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
)

// figGroupCommit measures WAL group commit under concurrent sessions: N
// writers issuing single-statement INSERTs with fsync on, against the
// serialized baseline where every committer pays its own fsync (the seed's
// behavior, kept behind DurabilityOptions.NoGroupCommit). The durability
// figure shows fsync dominating the write path ~40x; transactions amortize
// it only when the application batches explicitly — group commit amortizes
// it transparently across whatever concurrency the server already has.
func figGroupCommit() error {
	const perSession = 300
	fmt.Println("WAL group commit: concurrent single-statement writers, fsync on (PR 4)")
	fmt.Printf("%-12s %16s %16s %12s %18s\n", "sessions", "serialized", "group commit", "speedup", "fsyncs/commit")

	run := func(sessions int, noGroup bool) (time.Duration, float64, error) {
		dir, err := os.MkdirTemp("", "cryptdb-groupcommit")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		db, err := sqldb.Open(dir, sqldb.DurabilityOptions{CheckpointBytes: -1, NoGroupCommit: noGroup})
		if err != nil {
			return 0, 0, err
		}
		defer db.Close()
		if _, err := db.ExecSQL("CREATE TABLE t (id INT, payload TEXT)"); err != nil {
			return 0, 0, err
		}
		total := int64(sessions * perSession)
		var next int64
		var wg sync.WaitGroup
		errCh := make(chan error, sessions)
		start := time.Now()
		for g := 0; g < sessions; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := db.NewSession()
				defer s.Close()
				for {
					i := atomic.AddInt64(&next, 1)
					if i > total {
						return
					}
					if _, err := s.ExecSQL("INSERT INTO t (id, payload) VALUES (?, ?)",
						sqldb.Int(i), sqldb.Text("payload-payload-payload-payload")); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		per := time.Since(start) / time.Duration(total)
		close(errCh)
		for err := range errCh {
			return 0, 0, err
		}
		stats := db.WALStats()
		return per, float64(stats.Syncs) / float64(stats.Batches), nil
	}

	for _, sessions := range []int{1, 4, 16} {
		serial, _, err := run(sessions, true)
		if err != nil {
			return err
		}
		grouped, syncRatio, err := run(sessions, false)
		if err != nil {
			return err
		}
		fmt.Printf("%-12d %16v %16v %11.2fx %18.2f\n",
			sessions, serial, grouped, float64(serial)/float64(grouped), syncRatio)
	}
	fmt.Println("\nper-op wall time across all sessions; fsyncs/commit is the grouped run's")
	fmt.Println("sync-to-batch ratio (1.0 = no sharing, 1/N = perfect cohorts of N).")
	return nil
}
