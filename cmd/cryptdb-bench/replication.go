package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/store/replicated"
	"repro/internal/store/single"
)

// figReplication measures what asynchronous WAL shipping costs and buys:
//
//   - primary-only: durable write throughput with no replication attached
//     (the baseline every other arm is judged against).
//   - primary+follower: the same writes while a live follower tails the
//     stream. Replication is asynchronous — taps hand flushed cohorts to a
//     background sender — so the commit path should be within noise of the
//     baseline; this arm is the proof.
//   - replicated-e2e: the clock stops only when the follower has applied
//     every row. The gap to primary+follower is the shipping+replay lag a
//     bounded-staleness read would observe.
//   - follower-reads: SELECT throughput against the caught-up follower —
//     the read capacity one replica adds without touching the primary.
func figReplication() error {
	const rows = 3000
	const reads = 2000
	fmt.Printf("Replication: async WAL shipping, one follower, GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-18s %14s %14s\n", "arm", "per op", "ops/sec")

	dopts := sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: -1}
	openPrimary := func() (store.Engine, func(), error) {
		dir, err := os.MkdirTemp("", "cryptdb-repl-prim")
		if err != nil {
			return nil, nil, err
		}
		eng, err := single.Open(dir, dopts)
		if err != nil {
			os.RemoveAll(dir) //nolint:errcheck // unwinding a failed open
			return nil, nil, err
		}
		cleanup := func() {
			eng.Close()       //cryptdb:vet-ok durabilityerr: bench teardown of a throwaway temp-dir store; nothing to preserve
			os.RemoveAll(dir) //nolint:errcheck // bench teardown
		}
		if _, err := eng.ExecSQL("CREATE TABLE t (id INT PRIMARY KEY, v INT, note TEXT)"); err != nil {
			cleanup()
			return nil, nil, err
		}
		return eng, cleanup, nil
	}

	insert := func(eng store.Engine, n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := eng.ExecSQL("INSERT INTO t (id, v, note) VALUES (?, ?, ?)",
				sqldb.Int(int64(i)), sqldb.Int(int64(i*3)), sqldb.Text("payload")); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	report := func(name string, ops int, el time.Duration) {
		perOp := el / time.Duration(ops)
		rate := float64(ops) / el.Seconds()
		fmt.Printf("%-18s %14s %14.0f\n", name, perOp, rate)
		recordArm(name, float64(perOp.Nanoseconds()), rate)
	}

	// Arm 1: no replication attached.
	eng, cleanup, err := openPrimary()
	if err != nil {
		return err
	}
	el, err := insert(eng, rows)
	cleanup()
	if err != nil {
		return err
	}
	report("primary-only", rows, el)

	// Arms 2-4 share one primary+follower pair.
	eng, cleanup, err = openPrimary()
	if err != nil {
		return err
	}
	defer cleanup()
	pe, err := replicated.WrapPrimary(eng, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pe.Close() //nolint:errcheck // bench teardown
	folDir, err := os.MkdirTemp("", "cryptdb-repl-fol")
	if err != nil {
		return err
	}
	defer os.RemoveAll(folDir) //nolint:errcheck // bench teardown
	fe, err := replicated.OpenFollower(folDir, pe.Addr(), dopts)
	if err != nil {
		return err
	}
	defer fe.Close() //nolint:errcheck // bench teardown

	waitCaughtUp := func() error {
		return fe.WaitCaughtUp([]uint64{pe.Replication().ShardSeq(0)}, 60*time.Second)
	}
	if err := waitCaughtUp(); err != nil {
		return err
	}

	el, err = insert(pe, rows)
	if err != nil {
		return err
	}
	report("primary+follower", rows, el)
	start := time.Now()
	if err := waitCaughtUp(); err != nil {
		return err
	}
	report("replicated-e2e", rows, el+time.Since(start))

	start = time.Now()
	for i := 0; i < reads; i++ {
		if _, err := fe.ExecSQL("SELECT v, note FROM t WHERE id = ?", sqldb.Int(int64(i%rows))); err != nil {
			return err
		}
	}
	report("follower-reads", reads, time.Since(start))

	// A follower that was offline while the primary checkpointed catches
	// up through the snapshot path; time the full resync.
	if err := pe.Checkpoint(); err != nil {
		return err
	}
	folDir2, err := os.MkdirTemp("", "cryptdb-repl-fol2")
	if err != nil {
		return err
	}
	defer os.RemoveAll(folDir2) //nolint:errcheck // bench teardown
	start = time.Now()
	fe2, err := replicated.OpenFollower(folDir2, pe.Addr(), dopts)
	if err != nil {
		return err
	}
	defer fe2.Close() //nolint:errcheck // bench teardown
	if err := fe2.WaitCaughtUp([]uint64{pe.Replication().ShardSeq(0)}, 60*time.Second); err != nil {
		return err
	}
	report("snapshot-resync", rows, time.Since(start))
	return flushJSON("replication")
}
