// Command cryptdb-bench regenerates every table and figure of the paper's
// evaluation (§8) against this reproduction:
//
//	cryptdb-bench -fig 7        trace schema statistics
//	cryptdb-bench -fig 8        annotation / code-change effort
//	cryptdb-bench -fig 9        steady-state onion levels (security analysis)
//	cryptdb-bench -fig 10       TPC-C throughput vs server cores
//	cryptdb-bench -fig 11       per-query-class throughput vs strawman
//	cryptdb-bench -fig 12       server/proxy latency, with and without precompute
//	cryptdb-bench -fig 13       cryptographic scheme microbenchmarks
//	cryptdb-bench -fig 14       phpBB-style throughput (3 configurations)
//	cryptdb-bench -fig 15       phpBB-style per-request latency
//	cryptdb-bench -fig storage  ciphertext storage expansion (§8.4.3)
//	cryptdb-bench -fig adjust   onion-layer removal throughput (§8.4.4)
//	cryptdb-bench -fig ablation design-choice ablations (OPE cache, HOM pool, indexes)
//	cryptdb-bench -fig bulkload batched, parallel multi-row INSERT pipeline (§3.1)
//	cryptdb-bench -fig rangescan ordered OPE indexes vs full scans (§3.3)
//	cryptdb-bench -fig durability WAL/snapshot write-path overhead & recovery
//	cryptdb-bench -fig groupcommit concurrent sessions + WAL group commit
//	cryptdb-bench -fig shardscale sharded store write scaling (1/2/4/8 shards)
//	cryptdb-bench -fig joins    compiled vs interpreted joins and GROUP BY
//	cryptdb-bench -fig parallelexec morsel-parallel workers sweep (resident + paged)
//	cryptdb-bench -fig all      everything
//
// With -json, each figure also writes BENCH_<fig>.json (ns/op, rows/s and
// GOMAXPROCS per arm) for plotting and trend tracking.
package main

import (
	"flag"
	"fmt"
	"os"
)

var figures = map[string]func() error{
	"7":            fig7,
	"8":            fig8,
	"9":            fig9,
	"10":           fig10,
	"11":           fig11,
	"12":           fig12,
	"13":           fig13,
	"14":           fig14,
	"15":           fig15,
	"storage":      figStorage,
	"adjust":       figAdjust,
	"ablation":     figAblation,
	"bulkload":     figBulkLoad,
	"rangescan":    figRangeScan,
	"durability":   figDurability,
	"groupcommit":  figGroupCommit,
	"shardscale":   figShardScale,
	"joins":        figJoins,
	"parallelexec": figParallelExec,
	"replication":  figReplication,
}

var order = []string{"7", "8", "9", "10", "11", "12", "13", "14", "15", "storage", "adjust", "ablation", "bulkload", "rangescan", "durability", "groupcommit", "shardscale", "joins", "parallelexec", "replication"}

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (7..15, storage, adjust, ablation, bulkload, rangescan, durability, groupcommit, shardscale, joins, all)")
	jsonFlag := flag.Bool("json", false, "also write BENCH_<fig>.json per figure")
	flag.Parse()
	jsonEnabled = *jsonFlag

	if *fig == "all" {
		for _, f := range order {
			header(f)
			if err := figures[f](); err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
				os.Exit(1)
			}
			if err := flushJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := figures[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	header(*fig)
	if err := fn(); err != nil {
		fmt.Fprintf(os.Stderr, "figure %s: %v\n", *fig, err)
		os.Exit(1)
	}
	if err := flushJSON(*fig); err != nil {
		fmt.Fprintf(os.Stderr, "figure %s: %v\n", *fig, err)
		os.Exit(1)
	}
}

func header(fig string) {
	fmt.Printf("==== Figure/Table %s ", fig)
	for i := len(fig); i < 60; i++ {
		fmt.Print("=")
	}
	fmt.Println()
}
