package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
	"repro/internal/store/sharded"
	"repro/internal/store/single"
)

// figShardScale measures routed single-statement write throughput against
// the sharded store at 1/2/4/8 shards, 16 concurrent sessions — the
// scaling wall this PR moves. Two arms:
//
//   - fsync on: each shard fsyncs its own WAL, so the streams overlap on
//     parallel storage — but cohorts also fragment (group commit amortizes
//     within one shard only), so slow-fsync devices trade amortization for
//     parallelism.
//   - nofsync: isolates the statement-lock split, the contention PR 4 left
//     behind: N shards means N independent db.mu write paths.
//
// Both axes need parallel hardware to pay off; the figure prints
// GOMAXPROCS so a flat curve on a single-core CI box reads as what it is.
// The store/single row is the PR 4 baseline; sharded-1 shows the
// interface itself costs nothing. Stats are read through
// store.Engine.Stats(), which sums across shards.
func figShardScale() error {
	const sessions = 16
	const perSession = 250
	fmt.Printf("Sharded store write scaling: 16 sessions, routed single-row INSERTs (PR 5), GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-18s %14s %14s %14s %16s\n", "store", "per stmt", "stmts/sec", "wal batches", "fsyncs (sum)")

	run := func(name string, open func(dir string) (store.Engine, error)) error {
		dir, err := os.MkdirTemp("", "cryptdb-shardscale")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		eng, err := open(dir)
		if err != nil {
			return err
		}
		defer eng.Close()
		if _, err := eng.ExecSQL("CREATE TABLE t (id INT PRIMARY KEY, payload TEXT)"); err != nil {
			return err
		}
		st, err := sqlparser.Parse("INSERT INTO t (id, payload) VALUES (?, ?)")
		if err != nil {
			return err
		}
		total := int64(sessions * perSession)
		var next int64
		var wg sync.WaitGroup
		errCh := make(chan error, sessions)
		start := time.Now()
		for g := 0; g < sessions; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := eng.NewConn()
				defer conn.Close()
				for {
					i := atomic.AddInt64(&next, 1)
					if i > total {
						return
					}
					if _, err := conn.Exec(st, sqldb.Int(i), sqldb.Text("payload-payload-payload-payload")); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errCh)
		for err := range errCh {
			return err
		}
		stats := eng.Stats()
		fmt.Printf("%-18s %14s %14.0f %14d %16d\n",
			name, (elapsed / time.Duration(total)).Round(time.Microsecond),
			float64(total)/elapsed.Seconds(), stats.WAL.Batches, stats.WAL.Syncs)
		return nil
	}

	for _, arm := range []struct {
		label   string
		noFsync bool
	}{
		{"fsync", false},
		{"nofsync", true},
	} {
		dopts := sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: arm.noFsync}
		if err := run("single/"+arm.label, func(dir string) (store.Engine, error) {
			return single.Open(dir, dopts)
		}); err != nil {
			return err
		}
		for _, shards := range []int{1, 2, 4, 8} {
			n := shards
			if err := run(fmt.Sprintf("sharded-%d/%s", n, arm.label), func(dir string) (store.Engine, error) {
				return sharded.Open(dir, n, dopts)
			}); err != nil {
				return err
			}
		}
	}
	fmt.Println("\nRows route by hash of the hidden rid; each shard keeps its own WAL and")
	fmt.Println("group-commit cohort, so the statement lock and the fsync stream both multiply")
	fmt.Println("with the shard count (given cores/spindles to run them on). Reads")
	fmt.Println("scatter-gather with an ordered merge (not timed here).")
	return nil
}
