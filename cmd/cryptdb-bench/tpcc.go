package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/strawman"
	"repro/internal/workload"
	"repro/internal/workload/tpcc"
	"repro/internal/workload/trace"
)

var benchCfg = tpcc.Config{Warehouses: 1, Districts: 2, Customers: 30, Items: 60, Orders: 25, Seed: 1}

// tpccTrainingQueries produces one query per class for training (§3.5.2:
// "If the developer knows some of the queries ahead of time ... adjust
// onions to the correct layer a priori").
func tpccTrainingQueries() []proxy.TrainQuery {
	g := tpcc.NewGenerator(benchCfg)
	var out []proxy.TrainQuery
	for _, c := range tpcc.Classes() {
		sql, params := g.ForClass(c)
		out = append(out, proxy.TrainQuery{SQL: sql, Params: params})
	}
	return out
}

// tpccTraceApp converts the TPC-C workload into a trace.App for the
// security analysis (Figure 9's TPC-C row).
func tpccTraceApp() (trace.App, error) {
	app := trace.App{Name: "TPC-C", Schema: tpcc.Schema()}
	g := tpcc.NewGenerator(benchCfg)
	for _, c := range tpcc.Classes() {
		sql, params := g.ForClass(c)
		app.Queries = append(app.Queries, trace.Query{SQL: sql, Params: params})
	}
	return app, nil
}

// newTrainedCryptDB loads TPC-C behind a trained CryptDB proxy with warm
// caches, the steady-state configuration of §8.4.1.
func newTrainedCryptDB() (*proxy.Proxy, *sqldb.DB, error) {
	plan, err := proxy.TrainPlan(tpcc.Schema(), tpccTrainingQueries())
	if err != nil {
		return nil, nil, err
	}
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{Plan: plan})
	if err != nil {
		return nil, nil, err
	}
	if err := tpcc.Load(p, benchCfg); err != nil {
		return nil, nil, err
	}
	// Refill the Paillier randomness pool off the critical path
	// (§3.5.2); the paper pre-computes 30,000 values.
	if err := p.HOMKey().Precompute(5000); err != nil {
		return nil, nil, err
	}
	// Trigger all onion adjustments once so measurements run in the
	// steady state.
	g := tpcc.NewGenerator(benchCfg)
	for _, c := range tpcc.Classes() {
		sql, params := g.ForClass(c)
		if _, err := p.Execute(sql, params...); err != nil {
			return nil, nil, err
		}
	}
	return p, db, nil
}

// fig10 measures TPC-C throughput as server cores vary (Figure 10).
func fig10() error {
	maxCores := runtime.GOMAXPROCS(0)
	coreSteps := []int{1, 2, 4, 8}
	fmt.Println("TPC-C throughput vs server cores (Figure 10)")
	fmt.Println("note: in this reproduction proxy and server share the machine, so the")
	fmt.Println("absolute CryptDB level is lower than the paper's 21-26% gap; the shape")
	fmt.Println("(both scale, then level off on lock contention) is the comparison point.")
	fmt.Printf("%6s %14s %14s %9s\n", "cores", "MySQL q/s", "CryptDB q/s", "ratio")

	for _, cores := range coreSteps {
		if cores > maxCores {
			break
		}
		prev := runtime.GOMAXPROCS(cores)

		plainDB := sqldb.New()
		plain := workload.PlainDB{DB: plainDB}
		if err := tpcc.Load(plain, benchCfg); err != nil {
			return err
		}
		plainTput, err := runClients(plain, cores*2, 4000)
		if err != nil {
			return err
		}

		p, _, err := newTrainedCryptDB()
		if err != nil {
			return err
		}
		encTput, err := runClients(p, cores*2, 2000)
		if err != nil {
			return err
		}

		runtime.GOMAXPROCS(prev)
		fmt.Printf("%6d %14.0f %14.0f %8.1f%%\n", cores, plainTput, encTput, 100*encTput/plainTput)
	}
	fmt.Println("paper: CryptDB throughput is 21-26% below MySQL at every core count")
	return nil
}

// runClients drives `clients` goroutines through the mix, `total` queries
// overall, returning queries/second.
func runClients(ex workload.Executor, clients, total int) (float64, error) {
	var remaining = int64(total)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			g := tpcc.NewGenerator(tpcc.Config{
				Warehouses: benchCfg.Warehouses, Districts: benchCfg.Districts,
				Customers: benchCfg.Customers, Items: benchCfg.Items,
				Orders: benchCfg.Orders, Seed: seed,
			})
			for atomic.AddInt64(&remaining, -1) >= 0 {
				_, sql, params := g.Next()
				if _, err := ex.Execute(sql, params...); err != nil {
					errs <- err
					return
				}
			}
		}(int64(c + 2))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return float64(total) / time.Since(start).Seconds(), nil
}

// fig11 measures per-query-class server throughput for MySQL, CryptDB and
// the strawman (Figure 11). Server-side time is what the paper plots (its
// proxy ran on a separate machine).
func fig11() error {
	fmt.Println("server throughput by query class (Figure 11), single core")

	plainDB := sqldb.New()
	plain := workload.PlainDB{DB: plainDB}
	if err := tpcc.Load(plain, benchCfg); err != nil {
		return err
	}
	p, encDB, err := newTrainedCryptDB()
	if err != nil {
		return err
	}
	smDB := sqldb.New()
	sm, err := strawman.New(smDB)
	if err != nil {
		return err
	}
	if err := tpcc.Load(sm, benchCfg); err != nil {
		return err
	}

	fmt.Printf("%-10s %14s %14s %14s %10s %10s\n",
		"class", "MySQL q/s", "CryptDB q/s", "Strawman q/s", "C/M", "S/M")
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	const n = 150
	for _, class := range tpcc.Classes() {
		mysqlT, err := classServerThroughput(plain, plainDB, class, n)
		if err != nil {
			return err
		}
		cryptT, err := classServerThroughput(p, encDB, class, n)
		if err != nil {
			return err
		}
		smT, err := classServerThroughput(sm, smDB, class, n)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %14.0f %14.0f %14.0f %9.2fx %9.2fx\n",
			class, mysqlT, cryptT, smT, cryptT/mysqlT, smT/mysqlT)
	}
	fmt.Println("paper: CryptDB pays most on Sum (2.0x less) and Upd.inc (1.6x less);")
	fmt.Println("the strawman is far slower on every class that scans (no usable indexes).")
	return nil
}

func classServerThroughput(ex workload.Executor, db *sqldb.DB, class tpcc.Class, n int) (float64, error) {
	g := tpcc.NewGenerator(benchCfg)
	// Warm any onion adjustment outside the measurement.
	sql, params := g.ForClass(class)
	if _, err := ex.Execute(sql, params...); err != nil {
		return 0, err
	}
	db.ResetBusyNanos()
	for i := 0; i < n; i++ {
		sql, params := g.ForClass(class)
		if _, err := ex.Execute(sql, params...); err != nil {
			return 0, err
		}
	}
	busy := db.BusyNanos()
	if busy == 0 {
		busy = 1
	}
	return float64(n) / (float64(busy) / 1e9), nil
}

// fig12 measures per-class server and proxy latency, with and without the
// ciphertext pre-computing/caching optimization (Figure 12).
func fig12() error {
	fmt.Println("per-query latency (Figure 12): server vs proxy, with/without precompute")

	withOpt, dbOpt, err := newTrainedCryptDB()
	if err != nil {
		return err
	}

	// Without the optimization: no HOM pool, no OPE cache.
	plan, err := proxy.TrainPlan(tpcc.Schema(), tpccTrainingQueries())
	if err != nil {
		return err
	}
	dbNo := sqldb.New()
	noOpt, err := proxy.New(dbNo, proxy.Options{Plan: plan, DisableOPECache: true})
	if err != nil {
		return err
	}
	if err := tpcc.Load(noOpt, benchCfg); err != nil {
		return err
	}
	gw := tpcc.NewGenerator(benchCfg)
	for _, c := range tpcc.Classes() {
		sql, params := gw.ForClass(c)
		if _, err := noOpt.Execute(sql, params...); err != nil {
			return err
		}
	}

	fmt.Printf("%-10s %12s %12s %12s\n", "class", "server", "proxy", "proxy*")
	const n = 60
	for _, class := range tpcc.Classes() {
		srv, prox, err := classLatency(withOpt, dbOpt, class, n)
		if err != nil {
			return err
		}
		_, proxNo, err := classLatency(noOpt, dbNo, class, n)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %10.3fms %10.3fms %10.3fms\n",
			class, ms(srv), ms(prox), ms(proxNo))
	}
	fmt.Println("(proxy* = without HOM pre-computation and OPE caching, §3.5.2;")
	fmt.Println(" paper: Insert 0.37 -> 16.3 ms, Upd.inc 0.30 -> 25.1 ms without them)")
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func classLatency(p *proxy.Proxy, db *sqldb.DB, class tpcc.Class, n int) (server, prox time.Duration, err error) {
	g := tpcc.NewGenerator(benchCfg)
	sql, params := g.ForClass(class)
	if _, err := p.Execute(sql, params...); err != nil {
		return 0, 0, err
	}
	db.ResetBusyNanos()
	start := time.Now()
	for i := 0; i < n; i++ {
		sql, params := g.ForClass(class)
		if _, err := p.Execute(sql, params...); err != nil {
			return 0, 0, err
		}
	}
	total := time.Since(start)
	busy := time.Duration(db.BusyNanos())
	return busy / time.Duration(n), (total - busy) / time.Duration(n), nil
}

// figStorage reproduces §8.4.3's storage accounting.
func figStorage() error {
	fmt.Println("ciphertext storage expansion (§8.4.3)")

	plainDB := sqldb.New()
	if err := tpcc.Load(workload.PlainDB{DB: plainDB}, benchCfg); err != nil {
		return err
	}

	// Trained (onions discarded per §3.5.2), as the paper's TPC-C runs.
	_, trainedDB, err := newTrainedCryptDB()
	if err != nil {
		return err
	}
	// Untrained: every applicable onion materialized.
	fullDB := sqldb.New()
	pf, err := proxy.New(fullDB, proxy.Options{})
	if err != nil {
		return err
	}
	if err := tpcc.Load(pf, benchCfg); err != nil {
		return err
	}

	pb, tb, fb := plainDB.SizeBytes(), trainedDB.SizeBytes(), fullDB.SizeBytes()
	fmt.Printf("TPC-C plaintext:          %10d bytes\n", pb)
	fmt.Printf("TPC-C CryptDB (trained):  %10d bytes  (%.2fx)   paper: 3.76x\n", tb, float64(tb)/float64(pb))
	fmt.Printf("TPC-C CryptDB (all onions): %8d bytes  (%.2fx)\n", fb, float64(fb)/float64(pb))
	if err := figStorageForum(); err != nil {
		return err
	}
	return figStoragePaged()
}

// figAdjust reproduces §8.4.4: onion-layer removal runs at roughly AES
// speed, once per column for the lifetime of the system.
func figAdjust() error {
	fmt.Println("adjustable encryption: RND layer removal throughput (§8.4.4)")
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 512})
	if err != nil {
		return err
	}
	if _, err := p.Execute("CREATE TABLE t (a INT, payload TEXT)"); err != nil {
		return err
	}
	const rows = 2000
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	for i := 0; i < rows; i++ {
		if _, err := p.Execute("INSERT INTO t (a, payload) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(string(payload))); err != nil {
			return err
		}
	}
	// The first equality query on payload strips RND from the whole
	// column via the DECRYPT_RND UDF.
	start := time.Now()
	if _, err := p.Execute("SELECT a FROM t WHERE payload = 'x'"); err != nil {
		return err
	}
	dur := time.Since(start)
	mb := float64(rows*len(payload)) / (1 << 20)
	fmt.Printf("stripped RND from %d rows x %d bytes in %v: %.0f MB/s\n",
		rows, len(payload), dur.Round(time.Millisecond), mb/dur.Seconds())
	fmt.Println("paper: ~200 MB/s per core (AES speed); needed once per column ever")

	adjBefore := p.Stats().OnionAdjustments
	if _, err := p.Execute("SELECT a FROM t WHERE payload = 'y'"); err != nil {
		return err
	}
	if p.Stats().OnionAdjustments == adjBefore {
		fmt.Println("steady state confirmed: repeat queries perform no server-side decryption")
	}
	return nil
}
