package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/crypto/feistel"
	"repro/internal/crypto/hom"
	"repro/internal/crypto/joinadj"
	"repro/internal/crypto/ope"
	"repro/internal/crypto/rnd"
	"repro/internal/crypto/search"
	"repro/internal/onion"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/strawman"
	"repro/internal/workload"
)

// timeOp measures the average latency of fn over n runs.
func timeOp(n int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// fig13 reproduces the cryptographic microbenchmarks (Figure 13).
func fig13() error {
	fmt.Println("crypto scheme microbenchmarks (Figure 13); paper values on the right")
	fmt.Printf("%-22s %12s %12s %14s   %s\n", "scheme", "encrypt", "decrypt", "special op", "paper (enc/dec/op)")

	key := []byte("bench-key")

	// 64-bit integer PRP (the paper's Blowfish slot).
	fc := feistel.New(key)
	encPRP, _ := timeOp(200000, func() error { fc.Encrypt(12345); return nil })
	decPRP, _ := timeOp(200000, func() error { fc.Decrypt(12345); return nil })
	fmt.Printf("%-22s %12v %12v %14s   %s\n", "64-bit PRP (1 int)", encPRP, decPRP, "-", "0.0001 / 0.0001 ms (Blowfish)")

	// AES-CBC over 1 KB (RND).
	buf := make([]byte, 1024)
	iv, err := rnd.NewIV()
	if err != nil {
		return err
	}
	var ct []byte
	encCBC, _ := timeOp(20000, func() error {
		var err error
		ct, err = rnd.Bytes(key, iv, buf)
		return err
	})
	decCBC, _ := timeOp(20000, func() error {
		_, err := rnd.DecryptBytes(key, iv, ct)
		return err
	})
	fmt.Printf("%-22s %12v %12v %14s   %s\n", "AES-CBC (1 KB)", encCBC, decCBC, "-", "0.008 / 0.007 ms")

	// OPE over one 32-bit integer, fresh values (cold cache) to match
	// the paper's per-encryption cost.
	opeC := ope.New(key)
	var i uint64
	encOPE, _ := timeOp(300, func() error {
		i += 7919
		_, err := opeC.Encrypt(i % (1 << 32))
		return err
	})
	var last uint64
	last, _ = opeC.Encrypt(999)
	decOPE, _ := timeOp(300, func() error {
		_, err := opeC.Decrypt(last)
		return err
	})
	fmt.Printf("%-22s %12v %12v %14s   %s\n", "OPE (1 int)", encOPE, decOPE, "compare: 0", "9.0 / 9.0 ms, compare 0")

	// SEARCH over one word.
	sc := search.New(key)
	var blob []byte
	encS, _ := timeOp(20000, func() error {
		var err error
		blob, err = sc.EncryptText("confidential")
		return err
	})
	tok := sc.TokenFor("confidential")
	matchS, _ := timeOp(20000, func() error { search.Match(blob, tok); return nil })
	fmt.Printf("%-22s %12v %12s %14s   %s\n", "SEARCH (1 word)", encS, "-", fmt.Sprintf("match: %v", matchS), "0.01 / 0.004 ms, match 0.001")

	// HOM (Paillier, 1024-bit n -> 2048-bit ciphertexts).
	hk, err := hom.GenerateKey(hom.DefaultBits)
	if err != nil {
		return err
	}
	encHOMCold, _ := timeOp(20, func() error {
		_, err := hk.EncryptInt64(42)
		return err
	})
	if err := hk.Precompute(120); err != nil {
		return err
	}
	encHOMWarm, _ := timeOp(100, func() error {
		_, err := hk.EncryptInt64(42)
		return err
	})
	c1, _ := hk.EncryptInt64(1)
	c2, _ := hk.EncryptInt64(2)
	decHOM, _ := timeOp(200, func() error {
		_, err := hk.DecryptInt64(c1)
		return err
	})
	addHOM, _ := timeOp(5000, func() error { hk.Add(c1, c2); return nil })
	fmt.Printf("%-22s %12v %12v %14s   %s\n", "HOM (1 int)", encHOMCold, decHOM,
		fmt.Sprintf("add: %v", addHOM), "9.7 / 0.7 ms, add 0.005")
	fmt.Printf("%-22s %12v %12s %14s   %s\n", "HOM (pooled r^n)", encHOMWarm, "-", "-", "(§3.5.2 precompute path)")

	// JOIN-ADJ.
	jk := joinadj.DeriveKey([]byte("col-a"))
	jk2 := joinadj.DeriveKey([]byte("col-b"))
	k0 := []byte("k0")
	var jv []byte
	encJ, _ := timeOp(2000, func() error { jv = jk.Compute(k0, []byte("val")); return nil })
	delta, err := jk2.Delta(jk)
	if err != nil {
		return err
	}
	adjJ, _ := timeOp(2000, func() error {
		_, err := joinadj.Adjust(jv, delta)
		return err
	})
	fmt.Printf("%-22s %12v %12s %14s   %s\n", "JOIN-ADJ (1 int)", encJ, "-",
		fmt.Sprintf("adjust: %v", adjJ), "0.52 ms, adjust 0.56")
	return nil
}

// figAblation quantifies the paper's design-choice optimizations.
func figAblation() error {
	fmt.Println("ablations of the paper's design choices")

	// 1. OPE node caching (§3.1: 25 ms -> 7 ms in the paper's terms).
	key := []byte("ablation")
	cached := ope.New(key)
	uncached := ope.New(key)
	uncached.DisableCache()
	vals := make([]uint64, 60)
	for i := range vals {
		vals[i] = uint64(i)*104729 + 17
	}
	warm, _ := cached.Encrypt(1) // prime shared prefixes
	_ = warm
	tCached, err := timeOp(len(vals), func() error {
		v := vals[0]
		vals = append(vals[1:], v)
		_, err := cached.Encrypt(v)
		return err
	})
	if err != nil {
		return err
	}
	vals2 := make([]uint64, 30)
	for i := range vals2 {
		vals2[i] = uint64(i)*104729 + 17
	}
	tUncached, err := timeOp(len(vals2), func() error {
		v := vals2[0]
		vals2 = append(vals2[1:], v)
		_, err := uncached.Encrypt(v)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("OPE encryption:       with tree cache %8v   without %8v   (%.1fx)\n",
		tCached, tUncached, float64(tUncached)/float64(tCached))
	fmt.Println("  paper: batch-tree optimization cut OPE from 25 ms to 7 ms per value")

	// 2. HOM r^n precompute (§3.5.2).
	hk, err := hom.GenerateKey(hom.DefaultBits)
	if err != nil {
		return err
	}
	tCold, _ := timeOp(15, func() error {
		_, err := hk.EncryptInt64(7)
		return err
	})
	if err := hk.Precompute(80); err != nil {
		return err
	}
	tWarm, _ := timeOp(60, func() error {
		_, err := hk.EncryptInt64(7)
		return err
	})
	fmt.Printf("HOM encryption:       with r^n pool   %8v   without %8v   (%.0fx)\n",
		tWarm, tCold, float64(tCold)/float64(tWarm))

	// 3. DET-indexed equality vs strawman full scan — why Figure 11's
	// strawman loses on every lookup class.
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 512})
	if err != nil {
		return err
	}
	if _, err := p.Execute("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		return err
	}
	if _, err := p.Execute("CREATE INDEX kvk ON kv (k)"); err != nil {
		return err
	}
	const rows = 3000
	for i := 0; i < rows; i++ {
		if _, err := p.Execute("INSERT INTO kv (k, v) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Text("value")); err != nil {
			return err
		}
	}
	if _, err := p.Execute("SELECT v FROM kv WHERE k = ?", sqldb.Int(1)); err != nil {
		return err
	}
	tIndexed, err := timeOp(500, func() error {
		_, err := p.Execute("SELECT v FROM kv WHERE k = ?", sqldb.Int(1234))
		return err
	})
	if err != nil {
		return err
	}

	smDB := sqldb.New()
	sm, err := newStrawmanKV(smDB, rows)
	if err != nil {
		return err
	}
	tScan, err := timeOp(20, func() error {
		_, err := sm.Execute("SELECT v FROM kv WHERE k = ?", sqldb.Int(1234))
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("equality lookup:      DET index       %8v   strawman scan %8v  (%.0fx)\n",
		tIndexed, tScan, float64(tScan)/float64(tIndexed))
	fmt.Printf("  (%d rows; the strawman UDF-decrypts every row on every lookup)\n", rows)
	return nil
}

// figBulkLoad reports multi-row INSERT throughput through the batched,
// parallel encryption pipeline (§3.1 "AVL binary search trees for batch
// encryption, e.g., database loads"): row-at-a-time statements, one
// multi-row statement on a single worker (sorted OPE batch), and the full
// worker pool.
func figBulkLoad() error {
	fmt.Println("bulk load: multi-row INSERT through the batched encryption pipeline (§3.1)")
	const rowsPerLoad, loads = 64, 8

	// Scattered keys, as in a real bulk load of non-sequential rows: this
	// is the case the sorted batch pass targets (sequential keys already
	// share tree prefixes in insertion order).
	scatter := func(k int) int64 { return int64(uint32(k) * 2654435761 % (1 << 31)) }
	insertSQL := func(base, n int) string {
		out := "INSERT INTO load (id, tag, qty) VALUES "
		for r := 0; r < n; r++ {
			if r > 0 {
				out += ", "
			}
			k := base + r
			out += fmt.Sprintf("(%d, 'tag-%d', %d)", scatter(k), k%13, scatter(k+1<<20))
		}
		return out
	}

	// One timed pass of an arm: a fresh proxy bulk-loads loads×rowsPerLoad
	// scattered rows. Returns the total wall time of the loads.
	runArm := func(workers int, multiRow bool) (time.Duration, error) {
		p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 512, BatchWorkers: workers})
		if err != nil {
			return 0, err
		}
		if _, err := p.Execute("CREATE TABLE load (id INT, tag TEXT, qty INT)"); err != nil {
			return 0, err
		}
		// Fill the Paillier pool up front so the arms compare the
		// encryption pipeline, not r^n refills (§3.5.2). Both INT columns
		// (id, qty) carry an Add onion: two HOM encryptions per row.
		if err := p.HOMKey().Precompute(2*rowsPerLoad*loads + 16); err != nil {
			return 0, err
		}
		start := time.Now()
		for l := 0; l < loads; l++ {
			base := l * rowsPerLoad
			if multiRow {
				if _, err := p.Execute(insertSQL(base, rowsPerLoad)); err != nil {
					return 0, err
				}
				continue
			}
			for r := 0; r < rowsPerLoad; r++ {
				if _, err := p.Execute(insertSQL(base+r, 1)); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}

	arms := []struct {
		name     string
		workers  int
		multiRow bool
	}{
		{"row-at-a-time (serial)", 1, false},
		{"one statement, 1 worker (batched)", 1, true},
		{fmt.Sprintf("worker pool (%d workers)", runtime.GOMAXPROCS(0)), 0, true},
	}
	// Alternate the arms over several rounds and keep each arm's best
	// pass: the minimum is robust against scheduler noise on shared boxes.
	best := make([]time.Duration, len(arms))
	const rounds = 5
	for round := 0; round < rounds; round++ {
		for i, a := range arms {
			el, err := runArm(a.workers, a.multiRow)
			if err != nil {
				return err
			}
			if best[i] == 0 || el < best[i] {
				best[i] = el
			}
		}
	}
	for i, a := range arms {
		fmt.Printf("%-34s %9.0f rows/s   (best of %d: %v per %d-row load)\n",
			a.name, float64(rowsPerLoad*loads)/best[i].Seconds(), rounds, best[i]/loads, rowsPerLoad)
	}
	fmt.Println("  batched: one sorted ope.EncryptBatch pass per column shares node-cache prefixes")
	fmt.Println("  pool:    remaining per-row onion work fans across BatchWorkers goroutines;")
	fmt.Println("           its gain over the batched arm scales with GOMAXPROCS (identical at 1 core)")
	return nil
}

// newStrawmanKV builds the strawman side of the index ablation.
func newStrawmanKV(db *sqldb.DB, rows int) (workloadExecutor, error) {
	sm, err := strawman.New(db)
	if err != nil {
		return nil, err
	}
	if _, err := sm.Execute("CREATE TABLE kv (k INT, v TEXT)"); err != nil {
		return nil, err
	}
	if _, err := sm.Execute("CREATE INDEX kvk ON kv (k)"); err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if _, err := sm.Execute("INSERT INTO kv (k, v) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Text("value")); err != nil {
			return nil, err
		}
	}
	return sm, nil
}

type workloadExecutor interface {
	Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error)
}

// figRangeScan demonstrates the ordered-index tentpole (§3.3: range
// queries, ORDER BY/LIMIT and MIN/MAX execute on OPE ciphertexts through
// ordinary ordered indexes): first on the bare DBMS substrate at 100k rows,
// then end to end through the proxy over an encrypted OPE column.
func figRangeScan() error {
	fmt.Println("ordered indexes vs full scans (§3.3 range queries over OPE)")

	// 1. DBMS substrate: 100k rows, indexed vs unindexed, loaded through
	// the same shared fixture the go-test benchmarks use.
	const rows = 100_000
	build := func(indexed bool) (*sqldb.DB, error) {
		db := sqldb.New()
		return db, workload.LoadRangeTable(db, rows, indexed)
	}
	idx, err := build(true)
	if err != nil {
		return err
	}
	scan, err := build(false)
	if err != nil {
		return err
	}

	queries := []struct {
		name        string
		sql         string
		idxN, scanN int
	}{
		{"range (~100 rows)", "SELECT v FROM r WHERE k >= 1000000 AND k < 2048576", 2000, 10},
		{"ORDER BY LIMIT 10", "SELECT v FROM r WHERE k >= 500000 ORDER BY k LIMIT 10", 5000, 5},
		{"MIN/MAX", "SELECT MIN(k), MAX(k) FROM r", 20000, 10},
	}
	fmt.Printf("DBMS substrate, %d rows:\n", rows)
	for _, q := range queries {
		st, err := sqlparser.Parse(q.sql)
		if err != nil {
			return err
		}
		tIdx, err := timeOp(q.idxN, func() error { _, err := idx.Exec(st); return err })
		if err != nil {
			return err
		}
		tScan, err := timeOp(q.scanN, func() error { _, err := scan.Exec(st); return err })
		if err != nil {
			return err
		}
		fmt.Printf("  %-20s ordered index %10v   full scan %10v   (%.0fx)\n",
			q.name, tIdx, tScan, float64(tScan)/float64(tIdx))
	}
	pc := idx.PlanCounters()
	fmt.Printf("  planner: %d range scans, %d index-ordered walks, %d endpoint MIN/MAX, %d full scans\n",
		pc.RangeScans, pc.OrderedScans, pc.MinMaxIndex, pc.FullScans)

	// 2. End to end through the proxy: the Ord onion sits at OPE after the
	// first range query, the adjustment re-materializes the ordered index,
	// and identical encrypted range queries stop table-scanning.
	const encRows = 4000
	plan := proxy.OnionPlan{
		"events.ts":  {onion.Eq, onion.Ord},
		"events.val": {onion.Eq},
	}
	buildProxy := func(indexed bool) (*proxy.Proxy, error) {
		p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 512, Plan: plan})
		if err != nil {
			return nil, err
		}
		if _, err := p.Execute("CREATE TABLE events (ts INT, val INT)"); err != nil {
			return nil, err
		}
		if indexed {
			if _, err := p.Execute("CREATE INDEX ets ON events (ts)"); err != nil {
				return nil, err
			}
		}
		for base := 0; base < encRows; base += 500 {
			sql := "INSERT INTO events (ts, val) VALUES "
			for i := 0; i < 500; i++ {
				if i > 0 {
					sql += ", "
				}
				k := base + i
				sql += fmt.Sprintf("(%d, %d)", uint32(k)*2654435761%1000000, k)
			}
			if _, err := p.Execute(sql); err != nil {
				return nil, err
			}
		}
		// First range query peels Ord to OPE and materializes the index.
		if _, err := p.Execute("SELECT val FROM events WHERE ts > 0 AND ts < 2"); err != nil {
			return nil, err
		}
		return p, nil
	}
	pIdx, err := buildProxy(true)
	if err != nil {
		return err
	}
	pScan, err := buildProxy(false)
	if err != nil {
		return err
	}
	encQ := "SELECT val FROM events WHERE ts >= 250000 AND ts < 260000"
	tIdx, err := timeOp(2000, func() error { _, err := pIdx.Execute(encQ); return err })
	if err != nil {
		return err
	}
	tScan, err := timeOp(50, func() error { _, err := pScan.Execute(encQ); return err })
	if err != nil {
		return err
	}
	fmt.Printf("proxy end to end, %d rows, encrypted OPE range query:\n", encRows)
	fmt.Printf("  %-20s with Ord index %9v   without %10v   (%.0fx)\n", "range (~40 rows)", tIdx, tScan, float64(tScan)/float64(tIdx))
	fmt.Println("  one CREATE INDEX yields the Eq hash index at DET and the Ord ordered index at OPE;")
	fmt.Println("  the ordered index is (re)built when onion adjustment peels RND off the Ord onion")
	return nil
}
