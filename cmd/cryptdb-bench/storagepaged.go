package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/sqldb"
)

// The paged-storage arms of -fig storage: beyond-RAM datasets behind the
// buffer cache, a cache-size sweep, and the incremental-checkpoint pause
// curve. These measure the storage engine directly (no proxy): the paging
// layer sits below the cryptography, and §8.4.1's point is exactly that the
// DBMS side is an ordinary systems problem.

// pagedBenchRow pads every row to ~120 payload bytes so byte budgets
// translate to predictable page counts.
var pagedBenchPad = strings.Repeat("p", 100)

// loadPagedBench bulk-loads n rows into db (paged or not).
func loadPagedBench(db *sqldb.DB, n int) error {
	if _, err := db.ExecSQL("CREATE TABLE big (id INT PRIMARY KEY, pad TEXT)"); err != nil {
		return err
	}
	const batch = 256
	for base := 0; base < n; base += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO big (id, pad) VALUES ")
		for i := 0; i < batch && base+i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%d-%s')", base+i, base+i, pagedBenchPad)
		}
		if _, err := db.ExecSQL(sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// pointReads measures random point-read throughput over ids in [0, space).
func pointReads(db *sqldb.DB, space, n int, seed int64) (nsPerOp float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < n; i++ {
		res, err := db.ExecSQL("SELECT pad FROM big WHERE id = ?", sqldb.Int(int64(rng.Intn(space))))
		if err != nil {
			return 0, err
		}
		if len(res.Rows) != 1 {
			return 0, fmt.Errorf("point read returned %d rows", len(res.Rows))
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}

func figStoragePaged() error {
	fmt.Println()
	fmt.Println("paged storage: beyond-RAM datasets behind the buffer cache")

	const budget = 2 << 20
	const rows = 72 * 1024 // ~9 MB of row payload: >4x the cache budget
	const reads = 4000

	dir, err := os.MkdirTemp("", "cryptdb-bench-paged")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dopts := sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: -1, Paged: true, CacheBytes: budget}
	db, err := sqldb.Open(dir+"/paged", dopts)
	if err != nil {
		return err
	}
	defer db.Close()
	if err := loadPagedBench(db, rows); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	cs := db.CacheStats()
	fmt.Printf("dataset: %d rows, %d data bytes; cache budget %d bytes\n", rows, db.SizeBytes(), budget)
	fmt.Printf("resident %d bytes (%.2fx budget), on disk %d bytes (%.1fx budget)\n",
		cs.ResidentBytes, float64(cs.ResidentBytes)/float64(budget),
		db.DiskSizeBytes(), float64(db.DiskSizeBytes())/float64(budget))

	// An in-memory database over the same rows is the throughput baseline.
	mem := sqldb.New()
	if err := loadPagedBench(mem, rows); err != nil {
		return err
	}

	// Hot: a working set that fits the cache (first ~budget/2 bytes of
	// rows). Cold: uniform over the whole beyond-RAM dataset.
	hotSpace := budget / 2 / 128
	memHot, err := pointReads(mem, hotSpace, reads, 1)
	if err != nil {
		return err
	}
	pagedHot, err := pointReads(db, hotSpace, reads, 1)
	if err != nil {
		return err
	}
	pagedCold, err := pointReads(db, rows, reads, 2)
	if err != nil {
		return err
	}
	fmt.Printf("point reads, cache-resident working set: in-memory %8.0f ns/op, paged %8.0f ns/op (%.2fx)\n",
		memHot, pagedHot, pagedHot/memHot)
	fmt.Printf("point reads, uniform over 4x-budget set:  paged    %8.0f ns/op (faults+evictions per op: %.3f)\n",
		pagedCold, float64(db.CacheStats().Misses-cs.Misses)/float64(reads))
	recordArm("point-read/in-memory", memHot, 1e9/memHot)
	recordArm("point-read/paged-hot", pagedHot, 1e9/pagedHot)
	recordArm("point-read/paged-cold", pagedCold, 1e9/pagedCold)

	// Cache-size sweep over the same directory: reopen with each budget.
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Println("cache-size sweep, uniform point reads over the same dataset:")
	for _, mb := range []int64{1, 2, 4, 8, 16} {
		dopts.CacheBytes = mb << 20
		sdb, err := sqldb.Open(dir+"/paged", dopts)
		if err != nil {
			return err
		}
		ns, err := pointReads(sdb, rows, reads, 3)
		if err != nil {
			sdb.Close()
			return err
		}
		scs := sdb.CacheStats()
		hitRate := float64(scs.Hits) / float64(scs.Hits+scs.Misses)
		fmt.Printf("  cache %2d MiB: %8.0f ns/op  (hit rate %.2f, resident %d bytes)\n", mb, ns, hitRate, scs.ResidentBytes)
		recordArm(fmt.Sprintf("cache-sweep/%dmb", mb), ns, 1e9/ns)
		if err := sdb.Close(); err != nil {
			return err
		}
	}

	// Incremental checkpoint pause vs table size: the same churn (512
	// updated rows) is checkpointed out of tables of growing size. The
	// paper-level claim is that the pause follows the churn, not the data.
	fmt.Println("incremental checkpoint: commit-visible pause vs table size (fixed 512-row churn):")
	for _, n := range []int{8192, 16384, 32768, 65536} {
		cdir := fmt.Sprintf("%s/ckpt-%d", dir, n)
		copts := sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: -1, Paged: true, CacheBytes: 64 << 20}
		cdb, err := sqldb.Open(cdir, copts)
		if err != nil {
			return err
		}
		if err := loadPagedBench(cdb, n); err != nil {
			cdb.Close()
			return err
		}
		if err := cdb.Checkpoint(); err != nil { // the bulk checkpoint
			cdb.Close()
			return err
		}
		const rounds = 5
		var pause, bytes int64
		for r := 0; r < rounds; r++ {
			// Clustered churn: 512 consecutive ids dirty the same few pages
			// whatever the table size, so a flat curve here is exactly the
			// claim — the pause follows the churn, not the data.
			base := (r * 512) % (n - 512)
			for i := 0; i < 512; i++ {
				if _, err := cdb.ExecSQL("UPDATE big SET pad = ? WHERE id = ?",
					sqldb.Text(fmt.Sprintf("u%d-%s", r, pagedBenchPad)), sqldb.Int(int64(base+i))); err != nil {
					cdb.Close()
					return err
				}
			}
			before := cdb.CheckpointPauseNanos()
			if err := cdb.Checkpoint(); err != nil {
				cdb.Close()
				return err
			}
			pause += cdb.CheckpointPauseNanos() - before
			bytes += cdb.LastCheckpointBytes()
		}
		fmt.Printf("  %6d rows: pause %8.0f ns, %7.0f bytes written per checkpoint\n",
			n, float64(pause)/rounds, float64(bytes)/rounds)
		recordArm(fmt.Sprintf("ckpt-pause/rows=%d", n), float64(pause)/rounds, 0)
		if err := cdb.Close(); err != nil {
			return err
		}
	}
	return nil
}
