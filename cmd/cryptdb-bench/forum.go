package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
	"repro/internal/workload"
	"repro/internal/workload/forum"
)

var forumCfg = forum.Config{Users: 10, Forums: 3, Posts: 20, Msgs: 10, Seed: 1}

// fig14 measures forum request throughput under the three configurations of
// Figure 14: direct DBMS, pass-through proxy, and CryptDB with annotated
// sensitive fields.
func fig14() error {
	fmt.Println("phpBB-style throughput, 10 parallel clients (Figure 14)")

	mysqlTput, err := forumThroughput(func() (workload.Executor, func(string, string) error, error) {
		return workload.PlainDB{DB: sqldb.New()}, nil, nil
	}, false)
	if err != nil {
		return err
	}
	proxyTput, err := forumThroughput(func() (workload.Executor, func(string, string) error, error) {
		return workload.Passthrough{DB: sqldb.New()}, nil, nil
	}, false)
	if err != nil {
		return err
	}
	cryptTput, err := forumThroughput(func() (workload.Executor, func(string, string) error, error) {
		m, _, err := mpForum()
		if err != nil {
			return nil, nil, err
		}
		return m, m.Login, nil
	}, true)
	if err != nil {
		return err
	}

	fmt.Printf("%-14s %14s %10s\n", "configuration", "requests/s", "vs MySQL")
	fmt.Printf("%-14s %14.0f %10s\n", "MySQL", mysqlTput, "-")
	fmt.Printf("%-14s %14.0f %9.1f%%\n", "MySQL+proxy", proxyTput, 100*(proxyTput-mysqlTput)/mysqlTput)
	fmt.Printf("%-14s %14.0f %9.1f%%\n", "CryptDB", cryptTput, 100*(cryptTput-mysqlTput)/mysqlTput)
	fmt.Println("paper: MySQL+proxy -8.3%, CryptDB -14.5% (half the loss is proxying itself)")

	// The paper's requests spend most of their time in PHP rendering
	// (~50-240 ms each), so its -14.5% reflects a few ms of crypto per
	// request. Our simulator has no app-server work, which inflates the
	// relative drop; the absolute added cost is the comparable figure.
	addedMs := (1/cryptTput - 1/mysqlTput) * 1000
	fmt.Printf("absolute crypto+proxy cost: %.2f ms per request (paper: 7-18 ms per request)\n", addedMs)
	return nil
}

func forumThroughput(build func() (workload.Executor, func(string, string) error, error), annotated bool) (float64, error) {
	ex, login, err := build()
	if err != nil {
		return 0, err
	}
	cfg := forumCfg
	cfg.Annotated = annotated
	if err := forum.Load(ex, cfg, login); err != nil {
		return 0, err
	}
	// Warm up adjustments.
	warm := forum.NewSim(ex, cfg, login)
	for _, k := range forum.Kinds() {
		if _, err := warm.Request(k); err != nil {
			return 0, err
		}
	}

	const clients = 10
	const totalReqs = 600
	var remaining = int64(totalReqs)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cc := cfg
			cc.Seed = seed
			sim := forum.NewSim(ex, cc, login)
			for atomic.AddInt64(&remaining, -1) >= 0 {
				if _, _, err := sim.Mix(); err != nil {
					errs <- err
					return
				}
			}
		}(int64(c + 11))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return float64(totalReqs) / time.Since(start).Seconds(), nil
}

// fig15 measures per-request latency for MySQL vs CryptDB (Figure 15).
func fig15() error {
	fmt.Println("phpBB-style request latency (Figure 15)")

	plain := workload.PlainDB{DB: sqldb.New()}
	if err := forum.Load(plain, forumCfg, nil); err != nil {
		return err
	}
	plainSim := forum.NewSim(plain, forumCfg, nil)

	m, _, err := mpForum()
	if err != nil {
		return err
	}
	cfg := forumCfg
	cfg.Annotated = true
	if err := forum.Load(m, cfg, m.Login); err != nil {
		return err
	}
	encSim := forum.NewSim(m, cfg, m.Login)
	for _, k := range forum.Kinds() {
		if _, err := encSim.Request(k); err != nil {
			return err
		}
	}

	paper := map[string][2]string{
		"Login":  {"60 ms", "67 ms"},
		"R post": {"50 ms", "60 ms"},
		"W post": {"133 ms", "151 ms"},
		"R msg":  {"61 ms", "73 ms"},
		"W msg":  {"237 ms", "251 ms"},
	}
	fmt.Printf("%-8s %12s %12s %10s   %s\n", "request", "MySQL", "CryptDB", "overhead", "paper (MySQL / CryptDB)")
	const n = 60
	for _, k := range forum.Kinds() {
		lp, err := requestLatency(plainSim, k, n)
		if err != nil {
			return err
		}
		le, err := requestLatency(encSim, k, n)
		if err != nil {
			return err
		}
		over := float64(le-lp) / float64(lp) * 100
		ref := paper[k.String()]
		fmt.Printf("%-8s %12v %12v %9.0f%%   %s / %s\n", k, lp, le, over, ref[0], ref[1])
	}
	fmt.Println("paper: CryptDB adds 7-18 ms (6-20%) per request")
	return nil
}

func requestLatency(s *forum.Sim, k forum.RequestKind, n int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := s.Request(k); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// figStorageForum measures the annotated forum's storage expansion
// (§8.4.3: phpBB grows 2.6 MB -> 3.3 MB, ~1.2x; most growth is key
// tables, not data).
func figStorageForum() error {
	plainDB := sqldb.New()
	if err := forum.Load(workload.PlainDB{DB: plainDB}, forumCfg, nil); err != nil {
		return err
	}
	m, encDB, err := mpForum()
	if err != nil {
		return err
	}
	cfg := forumCfg
	cfg.Annotated = true
	if err := forum.Load(m, cfg, m.Login); err != nil {
		return err
	}

	keyBytes := 0
	for _, t := range []string{"cryptdb_access_keys", "cryptdb_public_keys", "cryptdb_external_keys"} {
		if tbl := encDB.Table(t); tbl != nil {
			keyBytes += tbl.SizeBytes()
		}
	}
	pb, eb := plainDB.SizeBytes(), encDB.SizeBytes()
	fmt.Printf("forum plaintext:          %10d bytes\n", pb)
	fmt.Printf("forum CryptDB (mp mode):  %10d bytes  (%.2fx), of which key tables: %d bytes\n",
		eb, float64(eb)/float64(pb), keyBytes)
	fmt.Println("paper: phpBB 2.6 MB -> 3.3 MB (~1.2x); most growth is access/public/external keys")
	return nil
}
