package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/proxy"
	"repro/internal/sqldb"
)

// figDurability measures the write-path cost of the durability subsystem
// (WAL + snapshots, PR 3) against the in-memory baseline, and the recovery
// path: time to reopen a data dir from snapshot + WAL and serve the first
// query. The interesting numbers are the fsync column (the true cost of
// commit-durable writes; amortized by transactions) and the recovery time
// (bounded by the auto-checkpoint threshold).
func figDurability() error {
	const rows = 2000
	fmt.Println("durability write-path overhead and recovery (PR 3)")
	fmt.Printf("%-28s %14s %14s\n", "configuration", "per-INSERT", "vs memory")

	type cfg struct {
		name string
		open func(dir string) (*sqldb.DB, error)
	}
	var baseline time.Duration
	for _, c := range []cfg{
		{"in-memory (seed behavior)", func(string) (*sqldb.DB, error) { return sqldb.New(), nil }},
		{"wal, no fsync", func(dir string) (*sqldb.DB, error) {
			return sqldb.Open(dir, sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: -1})
		}},
		{"wal, fsync per commit", func(dir string) (*sqldb.DB, error) {
			return sqldb.Open(dir, sqldb.DurabilityOptions{CheckpointBytes: -1})
		}},
		{"wal, fsync, 100-row txns", func(dir string) (*sqldb.DB, error) {
			return sqldb.Open(dir, sqldb.DurabilityOptions{CheckpointBytes: -1})
		}},
	} {
		dir, err := os.MkdirTemp("", "cryptdb-durability")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := c.open(dir)
		if err != nil {
			return err
		}
		if _, err := db.ExecSQL("CREATE TABLE t (id INT, payload TEXT)"); err != nil {
			return err
		}
		batched := c.name == "wal, fsync, 100-row txns"
		start := time.Now()
		for i := 0; i < rows; i++ {
			if batched && i%100 == 0 {
				if _, err := db.ExecSQL("BEGIN"); err != nil {
					return err
				}
			}
			if _, err := db.ExecSQL("INSERT INTO t (id, payload) VALUES (?, ?)",
				sqldb.Int(int64(i)), sqldb.Text("payload-payload-payload-payload")); err != nil {
				return err
			}
			if batched && i%100 == 99 {
				if _, err := db.ExecSQL("COMMIT"); err != nil {
					return err
				}
			}
		}
		per := time.Since(start) / rows
		if baseline == 0 {
			baseline = per
			fmt.Printf("%-28s %14v %14s\n", c.name, per, "1.00x")
		} else {
			fmt.Printf("%-28s %14v %13.2fx\n", c.name, per, float64(per)/float64(baseline))
		}
		if err := db.Close(); err != nil {
			return fmt.Errorf("closing %s store: %w", c.name, err)
		}
	}

	// Recovery: a full encrypted stack (proxy + DBMS) reopened from disk,
	// first with pure WAL replay, then from a snapshot.
	dir, err := os.MkdirTemp("", "cryptdb-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := sqldb.Open(dir, sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: -1})
	if err != nil {
		return err
	}
	p, err := proxy.New(db, proxy.Options{HOMBits: 256, DataDir: dir})
	if err != nil {
		return err
	}
	if _, err := p.Execute("CREATE TABLE emp (id INT PRIMARY KEY, salary INT)"); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if _, err := p.Execute(fmt.Sprintf("INSERT INTO emp (id, salary) VALUES (%d, %d)", i, i%1000)); err != nil {
			return err
		}
	}
	if _, err := p.Execute("SELECT id FROM emp WHERE salary > 500 ORDER BY salary LIMIT 5"); err != nil {
		return err // peels Ord: the adjusted level must survive recovery
	}
	stats := db.WALStats()
	fmt.Printf("\nencrypted load: %d rows, wal %d batches / %d KiB\n", rows, stats.Batches, stats.Bytes/1024)
	if err := db.Close(); err != nil { // release the data-dir lock; recovery reopens it
		return err
	}

	reopen := func(label string) error {
		start := time.Now()
		db2, err := sqldb.Open(dir, sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: -1})
		if err != nil {
			return err
		}
		defer db2.Close()
		p2, err := proxy.New(db2, proxy.Options{HOMBits: 256, DataDir: dir})
		if err != nil {
			return err
		}
		if _, err := p2.Execute("SELECT id FROM emp WHERE salary > 500 ORDER BY salary LIMIT 5"); err != nil {
			return err
		}
		fmt.Printf("%-28s %14v (adjustments after restart: %d, want 0)\n",
			label, time.Since(start), p2.Stats().OnionAdjustments)
		return nil
	}
	if err := reopen("recover: wal replay"); err != nil {
		return err
	}
	dbc, err := sqldb.Open(dir, sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: -1})
	if err != nil {
		return err
	}
	if err := dbc.Checkpoint(); err != nil {
		dbc.Close()
		return err
	}
	if err := dbc.Close(); err != nil {
		return err
	}
	return reopen("recover: snapshot")
}
