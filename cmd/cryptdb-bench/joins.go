package main

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/store/sharded"
	"repro/internal/store/single"
)

// figJoins measures the compiled execution pipeline (hash joins, hash
// aggregation, lowered operator pipeline) against the AST interpreter, on
// both the single-DB store and the 4-shard store. Join and group columns
// stand in for DET onions: equality is the only predicate CryptDB's proxy
// emits against them, which is exactly the shape hash joins and hash
// aggregation serve. The plan-counter deltas printed per arm prove which
// pipeline executed (Compiled vs Interpreted) and that grouped queries
// pushed down per shard (GroupPushdowns) instead of falling back to the
// transient gather.
func figJoins() error {
	const users = 5000
	const orders = 20000
	const groups = 50

	fmt.Printf("Compiled vs interpreted execution: joins and GROUP BY, GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-34s %12s %14s %30s\n", "arm", "per stmt", "rows/sec", "plan counters (delta)")

	queries := []struct {
		key  string
		sql  string
		rows int
	}{
		{"equijoin", "SELECT orders.id, users.grp FROM orders, users WHERE orders.uid = users.id", orders},
		{"groupby", "SELECT grp, COUNT(*), SUM(amt), MIN(amt) FROM orders GROUP BY grp", groups},
		{"join-groupby", "SELECT users.grp, COUNT(*), SUM(orders.amt) FROM orders, users WHERE orders.uid = users.id GROUP BY users.grp", groups},
	}

	load := func(eng store.Engine) error {
		ddl := []string{
			"CREATE TABLE users (id INT PRIMARY KEY, grp INT)",
			"CREATE TABLE orders (id INT PRIMARY KEY, uid INT, grp INT, amt INT)",
			"CREATE INDEX orders_uid ON orders (uid) USING HASH",
		}
		for _, q := range ddl {
			if _, err := eng.ExecSQL(q); err != nil {
				return err
			}
		}
		insert := func(table, cols string, n int, row func(i int) string) error {
			const batch = 1000
			for lo := 0; lo < n; lo += batch {
				hi := lo + batch
				if hi > n {
					hi = n
				}
				var sb strings.Builder
				fmt.Fprintf(&sb, "INSERT INTO %s (%s) VALUES ", table, cols)
				for i := lo; i < hi; i++ {
					if i > lo {
						sb.WriteString(", ")
					}
					sb.WriteString(row(i))
				}
				if _, err := eng.ExecSQL(sb.String()); err != nil {
					return err
				}
			}
			return nil
		}
		if err := insert("users", "id, grp", users, func(i int) string {
			return fmt.Sprintf("(%d, %d)", i, i%groups)
		}); err != nil {
			return err
		}
		return insert("orders", "id, uid, grp, amt", orders, func(i int) string {
			return fmt.Sprintf("(%d, %d, %d, %d)", i, i%users, i%groups, i%977)
		})
	}

	type arm struct {
		key string
		eng store.Engine
		dbs []*sqldb.DB // every embedded DB, for toggling the pipeline
	}
	sdb := sqldb.New()
	sh := sharded.New(4)
	var shardDBs []*sqldb.DB
	for i := 0; i < sh.Shards(); i++ {
		shardDBs = append(shardDBs, sh.Shard(i))
	}
	stores := []arm{
		{"single", single.New(sdb), []*sqldb.DB{sdb}},
		{"sharded-4", sh, shardDBs},
	}

	for _, st := range stores {
		if err := load(st.eng); err != nil {
			return err
		}
	}

	compiledRows := map[string]float64{} // "query/store" -> rows/sec, compiled arms
	for _, q := range queries {
		for _, st := range stores {
			for _, mode := range []struct {
				key      string
				compiled bool
			}{{"compiled", true}, {"interpreted", false}} {
				for _, db := range st.dbs {
					db.SetCompiledExec(mode.compiled)
				}
				// Warm once (build caches, verify the row count), then
				// measure enough reps for a stable per-statement time.
				res, err := st.eng.ExecSQL(q.sql)
				if err != nil {
					return err
				}
				if len(res.Rows) != q.rows {
					return fmt.Errorf("%s on %s: got %d rows, want %d", q.key, st.key, len(res.Rows), q.rows)
				}
				before := st.eng.Stats().Plan
				reps := 0
				start := time.Now()
				for time.Since(start) < 2*time.Second && reps < 200 {
					if _, err := st.eng.ExecSQL(q.sql); err != nil {
						return err
					}
					reps++
				}
				elapsed := time.Since(start)
				delta := planDelta(before, st.eng.Stats().Plan)
				perOp := elapsed / time.Duration(reps)
				rowsPerSec := float64(q.rows) * float64(reps) / elapsed.Seconds()
				name := fmt.Sprintf("%s/%s/%s", q.key, st.key, mode.key)
				fmt.Printf("%-34s %12s %14.0f %30s\n", name, perOp.Round(time.Microsecond), rowsPerSec, delta)
				recordArm(name, float64(perOp.Nanoseconds()), rowsPerSec)
				if mode.compiled {
					compiledRows[q.key+"/"+st.key] = rowsPerSec
				}
			}
		}
		// Leave both engines in the default configuration.
		for _, st := range stores {
			for _, db := range st.dbs {
				db.SetCompiledExec(true)
			}
		}
	}

	fmt.Println("\nThe compiled arms keep every query off the interpreter (Compiled>0,")
	fmt.Println("Interpreted=0) and join via hash tables; on the sharded store, grouped")
	fmt.Println("queries over the routing-compatible shapes decompose per shard")
	fmt.Println("(GroupPushdowns) while the cross-shard join gathers and joins centrally.")

	// The cross-shard equijoin historically ran ~4x behind the single store:
	// the gather rebuilt the transient table's indexes one CREATE INDEX at a
	// time and executed the final join serially. With parallel index builds
	// and morsel-parallel final execution the gap should close toward the
	// gather's unavoidable copy cost — flag it if it reopens.
	if s, sh := compiledRows["equijoin/single"], compiledRows["equijoin/sharded-4"]; s > 0 && sh > 0 {
		ratio := s / sh
		fmt.Printf("\nequijoin compiled: single %.0f rows/s vs sharded-4 %.0f rows/s (%.1fx)\n", s, sh, ratio)
		switch {
		case ratio > 4 && runtime.GOMAXPROCS(0) > 1:
			fmt.Printf("WARNING: sharded-4 equijoin more than 4x behind single — the gather\n")
			fmt.Printf("path has likely regressed (serial index rebuilds or serial final exec).\n")
		case runtime.GOMAXPROCS(0) == 1:
			fmt.Printf("(single CPU: the gather's parallel index builds and morsel-parallel\n")
			fmt.Printf("final join run serially here, so the remaining gap is copy cost.)\n")
		}
	}
	return nil
}

// planDelta renders the interesting plan-counter movement between two
// snapshots.
func planDelta(a, b sqldb.PlanCounters) string {
	return fmt.Sprintf("cmp=%d int=%d hj=%d push=%d",
		b.Compiled-a.Compiled, b.Interpreted-a.Interpreted,
		b.HashJoins-a.HashJoins, b.GroupPushdowns-a.GroupPushdowns)
}
