package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/mp"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/workload/trace"
)

// fig7 reproduces the trace schema statistics (Figure 7). The synthetic
// trace is scaled down ~100x from sql.mit.edu; ratios are what carries.
func fig7() error {
	apps := trace.GenerateTrace(12, 0.01, 1)
	s := trace.Stats(apps)
	fmt.Println("sql.mit.edu-style trace schema statistics (synthetic, ~1% scale)")
	fmt.Printf("%-18s %10s %10s %10s\n", "", "Databases", "Tables", "Columns")
	fmt.Printf("%-18s %10d %10d %10d\n", "Complete schema", s.Databases, s.Tables, s.Columns)
	fmt.Printf("%-18s %10d %10d %10d\n", "Used in query", s.UsedDatabases, s.UsedTables, s.UsedColumns)
	fmt.Printf("paper:             %10s %10s %10s\n", "8,548", "177,154", "1,244,216")
	fmt.Printf("paper (used):      %10s %10s %10s\n", "1,193", "18,162", "128,840")
	return nil
}

// appSchemas returns the annotated schemas of the three multi-principal
// case-study applications (§5), used by Figures 8 and 14.
func appSchemas() map[string][]string {
	return map[string][]string{
		"phpBB": {
			"PRINCTYPE physical_user EXTERNAL",
			"PRINCTYPE puser, grp, forum_post, forum_name, msg",
			`CREATE TABLE users (userid INT, username VARCHAR(255),
				(username physical_user) SPEAKS FOR (userid puser))`,
			`CREATE TABLE usergroup (userid INT, groupid INT,
				(userid puser) SPEAKS FOR (groupid grp))`,
			`CREATE TABLE aclgroups (groupid INT, forumid INT, optionid INT,
				(groupid grp) SPEAKS FOR (forumid forum_post) IF optionid = 20,
				(groupid grp) SPEAKS FOR (forumid forum_name) IF optionid = 14)`,
			`CREATE TABLE posts (postid INT, forumid INT,
				post TEXT ENC FOR (forumid forum_post))`,
			`CREATE TABLE forum (forumid INT,
				name VARCHAR(255) ENC FOR (forumid forum_name))`,
			`CREATE TABLE privmsgs (msgid INT,
				subject VARCHAR(255) ENC FOR (msgid msg),
				msgtext TEXT ENC FOR (msgid msg))`,
			`CREATE TABLE privmsgs_to (msgid INT, rcpt_id INT, sender_id INT,
				(sender_id puser) SPEAKS FOR (msgid msg),
				(rcpt_id puser) SPEAKS FOR (msgid msg))`,
		},
		"HotCRP": {
			"PRINCTYPE physical_user EXTERNAL",
			"PRINCTYPE contact, paper, review",
			`CREATE TABLE ContactInfo (contactId INT, email VARCHAR(120),
				(email physical_user) SPEAKS FOR (contactId contact))`,
			"CREATE TABLE PCMember (contactId INT)",
			"CREATE TABLE PaperConflict (paperId INT, contactId INT)",
			`CREATE TABLE Paper (paperId INT,
				title VARCHAR(255) ENC FOR (paperId paper),
				abstract TEXT ENC FOR (paperId paper),
				authorInformation TEXT ENC FOR (paperId paper),
				(PCMember.contactId contact) SPEAKS FOR (paperId paper))`,
			`CREATE TABLE PaperReview (paperId INT,
				reviewerId INT ENC FOR (paperId review),
				commentsToPC TEXT ENC FOR (paperId review),
				commentsToAuthor TEXT ENC FOR (paperId review),
				(PCMember.contactId contact) SPEAKS FOR (paperId review) IF NoConflict(paperId, contactId))`,
		},
		"grad-apply": {
			"PRINCTYPE physical_user EXTERNAL",
			"PRINCTYPE reviewer, candidate, letterp",
			`CREATE TABLE reviewers (reviewer_id INT, email VARCHAR(120),
				(email physical_user) SPEAKS FOR (reviewer_id reviewer))`,
			`CREATE TABLE candidates (candidate_id INT, email VARCHAR(120),
				gre_verbal INT ENC FOR (candidate_id candidate),
				gre_quant INT ENC FOR (candidate_id candidate),
				gpa INT ENC FOR (candidate_id candidate),
				statement TEXT ENC FOR (candidate_id candidate),
				(email physical_user) SPEAKS FOR (candidate_id candidate),
				(reviewers.reviewer_id reviewer) SPEAKS FOR (candidate_id candidate))`,
			`CREATE TABLE letters (letter_id INT, candidate_id INT,
				letter TEXT ENC FOR (letter_id letterp),
				writer_email VARCHAR(120),
				(writer_email physical_user) SPEAKS FOR (letter_id letterp),
				(reviewers.reviewer_id reviewer) SPEAKS FOR (letter_id letterp))`,
			`CREATE TABLE scores (candidate_id INT, reviewer_id INT,
				score INT ENC FOR (candidate_id candidate),
				comment TEXT ENC FOR (candidate_id candidate))`,
		},
	}
}

// loginLines records the source-code changes each application needs: the
// calls providing user passwords to the proxy at login/logout (§8.1).
var loginLines = map[string]int{"phpBB": 7, "HotCRP": 2, "grad-apply": 2}

// fig8 counts schema annotations and code changes (Figure 8).
func fig8() error {
	fmt.Println("programmer effort to secure applications (Figure 8)")
	fmt.Printf("%-12s %12s %8s %12s   %s\n", "Application", "Annotations", "Unique", "Login LoC", "sensitive fields")
	paper := map[string][3]string{
		"phpBB":      {"31 (11 unique)", "7 lines", "23"},
		"HotCRP":     {"29 (12 unique)", "2 lines", "22"},
		"grad-apply": {"111 (13 unique)", "2 lines", "103"},
	}
	for _, name := range []string{"phpBB", "HotCRP", "grad-apply"} {
		total, unique, sensitive, err := countAnnotations(appSchemas()[name])
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %8d %12d   %d fields\n", name, total, unique, loginLines[name], sensitive)
		p := paper[name]
		fmt.Printf("  paper:     %12s          %12s   %s fields\n", p[0], p[1], p[2])
	}
	fmt.Println("TPC-C (single-principal): 0 annotations, 0 lines (all 92 columns encrypted)")
	return nil
}

// countAnnotations parses a schema and counts annotation invocations
// (PRINCTYPE, ENC FOR, SPEAKS FOR, IF predicates), unique annotation
// shapes, and secured (ENC FOR) fields.
func countAnnotations(ddl []string) (total, unique, sensitive int, err error) {
	shapes := map[string]bool{}
	for _, q := range ddl {
		st, err := sqlparser.Parse(q)
		if err != nil {
			return 0, 0, 0, err
		}
		switch s := st.(type) {
		case *sqlparser.PrincTypeStmt:
			total++
			shapes["princtype"] = true
		case *sqlparser.CreateTableStmt:
			for _, c := range s.Cols {
				if c.EncFor != nil {
					total++
					sensitive++
					shapes["encfor:"+c.EncFor.PrincType] = true
				}
			}
			for _, sf := range s.SpeaksFor {
				total++
				shape := "speaksfor:" + sf.AType + ">" + sf.BType
				if sf.If != nil {
					total++ // the predicate counts as an annotation
					shape += ":if"
					shapes[shape+":"+sf.If.String()] = true
				}
				shapes[shape] = true
			}
		}
	}
	return total, len(shapes), sensitive, nil
}

// fig9 reproduces the steady-state onion level analysis (Figure 9).
func fig9() error {
	fmt.Println("steady-state onion levels (Figure 9); paper values in parentheses")
	fmt.Printf("%-14s %8s %8s %8s %8s | %8s %8s %8s %8s\n",
		"Application", "consider", "plain", "HOM", "SEARCH", "RND", "SEARCH", "DET", "OPE")

	paperRows := map[string][8]int{
		"phpBB":        {23, 0, 1, 0, 21, 0, 1, 1},
		"HotCRP":       {22, 0, 2, 1, 18, 1, 1, 2},
		"grad-apply":   {103, 0, 0, 2, 95, 0, 6, 2},
		"OpenEMR":      {566, 7, 0, 3, 526, 2, 12, 19},
		"MIT-6.02":     {13, 0, 0, 0, 7, 0, 4, 2},
		"PHP-calendar": {12, 2, 0, 2, 3, 2, 4, 1},
	}
	for _, prof := range trace.PaperProfiles() {
		app := trace.Generate(prof, 42)
		row, err := analysis.AnalyzeApp(app)
		if err != nil {
			return err
		}
		printFig9Row(row, paperRows[prof.Name])
	}

	// TPC-C: every column considered; derived from the actual workload.
	tpccApp, err := tpccTraceApp()
	if err != nil {
		return err
	}
	tpccRow, err := analysis.AnalyzeApp(tpccApp)
	if err != nil {
		return err
	}
	printFig9Row(tpccRow, [8]int{92, 0, 8, 0, 65, 0, 19, 8})

	// The large trace, scaled.
	apps := trace.GenerateTrace(10, 0.005, 5)
	rows, err := analysis.AnalyzeApps(apps)
	if err != nil {
		return err
	}
	agg := analysis.Aggregate("trace(0.5%)", rows)
	printFig9Row(agg, [8]int{128840, 571, 1016, 1135, 84008, 398, 35350, 8513})
	fmt.Println("(trace row compares against the paper's with-in-proxy-processing counts, scaled)")
	return nil
}

func printFig9Row(r analysis.Fig9Row, paper [8]int) {
	fmt.Printf("%-14s %8d %8d %8d %8d | %8d %8d %8d %8d\n",
		r.App, r.ConsiderEnc, r.NeedsPlain, r.NeedsHOM, r.NeedsSEARCH,
		r.AtRND, r.AtSEARCH, r.AtDET, r.AtOPE)
	fmt.Printf("%-14s %8d %8d %8d %8d | %8d %8d %8d %8d\n",
		"  (paper)", paper[0], paper[1], paper[2], paper[3], paper[4], paper[5], paper[6], paper[7])
}

// fig14 measures forum throughput under the three configurations of
// Figure 14; fig15 the per-request latency of Figure 15. Both live in
// forum.go.

// mpForum builds an annotated-forum CryptDB stack with pre-generated
// principal keypairs (the precompute philosophy of §3.5.2).
func mpForum() (*mp.Manager, *sqldb.DB, error) {
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 512})
	if err != nil {
		return nil, nil, err
	}
	m := mp.New(p, mp.Options{RSABits: 1024})
	if err := m.PrecomputeKeypairs(350); err != nil {
		return nil, nil, err
	}
	return m, db, nil
}
