package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/sqldb"
)

// figParallelExec measures morsel-driven intra-query parallelism in the
// compiled pipeline: the same scan-heavy statements at 1/2/4/GOMAXPROCS
// workers, on a resident database and on a paged database whose working
// set exceeds the buffer cache. Worker count 1 is the serial ablation —
// the unchanged serial operator path — so the w1 rows double as the
// no-regression baseline. Every arm's row content and order are checked
// against the serial arm before timing: the speedup is only meaningful
// because the answers are bit-identical.
func figParallelExec() error {
	const users = 4000
	const orders = 60000
	const groups = 40

	maxProcs := runtime.GOMAXPROCS(0)
	fmt.Printf("Morsel-parallel compiled execution, GOMAXPROCS=%d\n", maxProcs)
	if maxProcs < 4 {
		fmt.Printf("NOTE: fewer than 4 CPUs — worker counts above %d add scheduling\n", maxProcs)
		fmt.Println("overhead without real concurrency; expect flat or worse scaling.")
	}
	fmt.Printf("%-36s %12s %14s %24s\n", "arm", "per stmt", "rows/sec", "plan counters (delta)")

	// No hash index on the join columns: the equijoin builds its transient
	// hash table per statement, which is exactly the build the parallel
	// pipeline stripes. The group-by arms exercise partial-aggregate merge.
	queries := []struct {
		key  string
		sql  string
		rows int
	}{
		{"equijoin", "SELECT orders.id, users.grp FROM orders, users WHERE orders.uid = users.id", orders},
		{"groupby", "SELECT grp, COUNT(*), SUM(amt), MIN(amt), MAX(amt) FROM orders GROUP BY grp", groups},
		{"join-groupby", "SELECT users.grp, COUNT(*), SUM(orders.amt) FROM orders, users WHERE orders.uid = users.id GROUP BY users.grp", groups},
	}

	load := func(db *sqldb.DB) error {
		ddl := []string{
			"CREATE TABLE users (id INT PRIMARY KEY, grp INT)",
			"CREATE TABLE orders (id INT PRIMARY KEY, uid INT, grp INT, amt INT)",
		}
		for _, q := range ddl {
			if _, err := db.ExecSQL(q); err != nil {
				return err
			}
		}
		insert := func(table, cols string, n int, row func(i int) string) error {
			const batch = 1000
			for lo := 0; lo < n; lo += batch {
				hi := lo + batch
				if hi > n {
					hi = n
				}
				var sb strings.Builder
				fmt.Fprintf(&sb, "INSERT INTO %s (%s) VALUES ", table, cols)
				for i := lo; i < hi; i++ {
					if i > lo {
						sb.WriteString(", ")
					}
					sb.WriteString(row(i))
				}
				if _, err := db.ExecSQL(sb.String()); err != nil {
					return err
				}
			}
			return nil
		}
		if err := insert("users", "id, grp", users, func(i int) string {
			return fmt.Sprintf("(%d, %d)", i, i%groups)
		}); err != nil {
			return err
		}
		return insert("orders", "id, uid, grp, amt", orders, func(i int) string {
			return fmt.Sprintf("(%d, %d, %d, %d)", i, i%users, i%groups, i%977)
		})
	}

	workerCounts := []int{1, 2, 4}
	if maxProcs > 4 {
		workerCounts = append(workerCounts, maxProcs)
	}

	type layout struct {
		key  string
		open func() (*sqldb.DB, func(), error)
	}
	layouts := []layout{
		{"resident", func() (*sqldb.DB, func(), error) {
			return sqldb.New(), func() {}, nil
		}},
		{"paged", func() (*sqldb.DB, func(), error) {
			dir, err := os.MkdirTemp("", "cryptdb-parallelexec-*")
			if err != nil {
				return nil, nil, err
			}
			// A cache well under the ~60k-row working set keeps the pager
			// evicting, so morsel workers fault pages in concurrently.
			db, err := sqldb.Open(dir, sqldb.DurabilityOptions{
				NoFsync:    true,
				Paged:      true,
				CacheBytes: 1 << 20,
			})
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			cleanup := func() {
				db.Close() //cryptdb:vet-ok durabilityerr: bench teardown of a NoFsync scratch database whose directory is removed on the next line — there is no durable state to lose
				os.RemoveAll(dir)
			}
			return db, cleanup, nil
		}},
	}

	for _, lay := range layouts {
		db, cleanup, err := lay.open()
		if err != nil {
			return err
		}
		if err := load(db); err != nil {
			cleanup()
			return err
		}
		for _, q := range queries {
			var serial *sqldb.Result
			for _, nw := range workerCounts {
				db.SetExecWorkers(nw)
				// Warm once, verify the row count, and pin equivalence
				// against the serial arm — content and order.
				res, err := db.ExecSQL(q.sql)
				if err != nil {
					cleanup()
					return err
				}
				if len(res.Rows) != q.rows {
					cleanup()
					return fmt.Errorf("%s/%s w%d: got %d rows, want %d", q.key, lay.key, nw, len(res.Rows), q.rows)
				}
				if nw == 1 {
					serial = res
				} else if err := sameResult(serial, res); err != nil {
					cleanup()
					return fmt.Errorf("%s/%s w%d diverges from serial: %v", q.key, lay.key, nw, err)
				}
				before := db.PlanCounters()
				reps := 0
				start := time.Now()
				for time.Since(start) < 2*time.Second && reps < 200 {
					if _, err := db.ExecSQL(q.sql); err != nil {
						cleanup()
						return err
					}
					reps++
				}
				elapsed := time.Since(start)
				after := db.PlanCounters()
				perOp := elapsed / time.Duration(reps)
				rowsPerSec := float64(q.rows) * float64(reps) / elapsed.Seconds()
				name := fmt.Sprintf("%s/%s/w%d", q.key, lay.key, nw)
				delta := fmt.Sprintf("par=%d morsels=%d",
					after.ParallelPipelines-before.ParallelPipelines,
					after.Morsels-before.Morsels)
				fmt.Printf("%-36s %12s %14.0f %24s\n", name, perOp.Round(time.Microsecond), rowsPerSec, delta)
				recordArm(name, float64(perOp.Nanoseconds()), rowsPerSec)
				if nw == 1 && after.ParallelPipelines != before.ParallelPipelines {
					cleanup()
					return fmt.Errorf("%s/%s: serial ablation ran parallel pipelines", q.key, lay.key)
				}
			}
		}
		db.SetExecWorkers(0)
		cleanup()
	}

	fmt.Println("\nWorker count 1 is the serial ablation (the unchanged serial operator")
	fmt.Println("path); multi-worker arms returned bit-identical rows in identical order")
	fmt.Println("before timing. Scan morsels, striped join builds and partial-aggregate")
	fmt.Println("merges only pay off with real cores: compare arms against the printed")
	fmt.Println("GOMAXPROCS, and read par= (statements that actually went parallel) to")
	fmt.Println("see whether a configuration engaged the morsel pipeline at all.")
	return nil
}

// sameResult reports the first difference in row content or order.
func sameResult(a, b *sqldb.Result) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return fmt.Errorf("row %d widths differ", i)
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j].String() != b.Rows[i][j].String() {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	return nil
}
