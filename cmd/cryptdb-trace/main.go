// Command cryptdb-trace generates a synthetic sql.mit.edu-style query trace
// and runs the paper's §8.2/§8.3 analyses over it: per-application schemas
// and query streams are fed through training-mode proxies, and the tool
// reports Figure 7 schema statistics and a Figure 9 onion-level table.
//
// Usage:
//
//	cryptdb-trace [-dbs 12] [-scale 0.01] [-seed 1] [-dump]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/workload/trace"
)

func main() {
	dbs := flag.Int("dbs", 12, "number of application databases to synthesize")
	scale := flag.Float64("scale", 0.01, "fraction of the paper's 128,840 trace columns")
	seed := flag.Int64("seed", 1, "generator seed")
	dump := flag.Bool("dump", false, "print every generated query")
	flag.Parse()

	apps := trace.GenerateTrace(*dbs, *scale, *seed)

	if *dump {
		for _, a := range apps {
			fmt.Printf("-- database %s\n", a.Name)
			for _, ddl := range a.Schema {
				fmt.Printf("%s;\n", ddl)
			}
			for _, q := range a.Queries {
				fmt.Printf("%s;\n", q.SQL)
			}
		}
		return
	}

	s := trace.Stats(apps)
	fmt.Println("schema statistics (Figure 7 shape):")
	fmt.Printf("  complete: %d databases, %d tables, %d columns\n", s.Databases, s.Tables, s.Columns)
	fmt.Printf("  used:     %d databases, %d tables, %d columns\n", s.UsedDatabases, s.UsedTables, s.UsedColumns)

	rows, err := analysis.AnalyzeApps(apps)
	if err != nil {
		log.Fatal(err)
	}
	agg := analysis.Aggregate("trace", rows)
	fmt.Println("\nonion-level analysis (Figure 9 shape):")
	fmt.Printf("  considered for encryption: %d columns\n", agg.ConsiderEnc)
	fmt.Printf("  needs plaintext: %d (%.2f%%)  needs HOM: %d  needs SEARCH: %d\n",
		agg.NeedsPlain, 100*float64(agg.NeedsPlain)/float64(agg.ConsiderEnc), agg.NeedsHOM, agg.NeedsSEARCH)
	fmt.Printf("  MinEnc: RND %d, SEARCH %d, DET %d, OPE %d\n",
		agg.AtRND, agg.AtSEARCH, agg.AtDET, agg.AtOPE)
	supported := agg.ConsiderEnc - agg.NeedsPlain
	fmt.Printf("  supported over encrypted data: %.1f%% (paper: 99.5%%)\n",
		100*float64(supported)/float64(agg.ConsiderEnc))
}
