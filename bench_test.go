// Package repro holds the testing.B benchmarks that regenerate the paper's
// tables and figures (one benchmark family per figure; see DESIGN.md §3 for
// the experiment index and cmd/cryptdb-bench for the formatted reports).
package repro

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/crypto/feistel"
	"repro/internal/crypto/hom"
	"repro/internal/crypto/joinadj"
	"repro/internal/crypto/ope"
	"repro/internal/crypto/rnd"
	"repro/internal/crypto/search"
	"repro/internal/mp"
	"repro/internal/onion"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
	"repro/internal/store/sharded"
	"repro/internal/store/single"
	"repro/internal/strawman"
	"repro/internal/workload"
	"repro/internal/workload/forum"
	"repro/internal/workload/tpcc"
	"repro/internal/workload/trace"
)

var benchCfg = tpcc.Config{Warehouses: 1, Districts: 2, Customers: 20, Items: 40, Orders: 15, Seed: 1}

// lazily shared fixtures; benchmarks only read through Execute.
var (
	fixOnce  sync.Once
	fixErr   error
	fixPlain workload.PlainDB
	fixCrypt *proxy.Proxy
	fixStraw *strawman.Proxy
)

func fixtures(b *testing.B) (workload.PlainDB, *proxy.Proxy, *strawman.Proxy) {
	b.Helper()
	fixOnce.Do(func() {
		fixPlain = workload.PlainDB{DB: sqldb.New()}
		if fixErr = tpcc.Load(fixPlain, benchCfg); fixErr != nil {
			return
		}
		var plan proxy.OnionPlan
		g := tpcc.NewGenerator(benchCfg)
		var tq []proxy.TrainQuery
		for _, c := range tpcc.Classes() {
			sql, params := g.ForClass(c)
			tq = append(tq, proxy.TrainQuery{SQL: sql, Params: params})
		}
		plan, fixErr = proxy.TrainPlan(tpcc.Schema(), tq)
		if fixErr != nil {
			return
		}
		fixCrypt, fixErr = proxy.New(sqldb.New(), proxy.Options{Plan: plan})
		if fixErr != nil {
			return
		}
		if fixErr = tpcc.Load(fixCrypt, benchCfg); fixErr != nil {
			return
		}
		if fixErr = fixCrypt.HOMKey().Precompute(8000); fixErr != nil {
			return
		}
		fixStraw, fixErr = strawman.New(sqldb.New())
		if fixErr != nil {
			return
		}
		if fixErr = tpcc.Load(fixStraw, benchCfg); fixErr != nil {
			return
		}
		// Warm adjustments on the CryptDB side.
		gw := tpcc.NewGenerator(benchCfg)
		for _, c := range tpcc.Classes() {
			sql, params := gw.ForClass(c)
			if _, fixErr = fixCrypt.Execute(sql, params...); fixErr != nil {
				return
			}
		}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixPlain, fixCrypt, fixStraw
}

func runClass(b *testing.B, ex workload.Executor, class tpcc.Class) {
	b.Helper()
	g := tpcc.NewGenerator(benchCfg)
	p, isProxy := ex.(*proxy.Proxy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keep the Paillier pool topped up off the clock, as the
		// paper's idle-time pre-computation does (§3.5.2); otherwise
		// long increment benchmarks measure pool refills.
		if isProxy && i%256 == 0 && p.HOMKey().PoolSize() < 64 {
			b.StopTimer()
			if err := p.HOMKey().Precompute(2048); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		sql, params := g.ForClass(class)
		if _, err := ex.Execute(sql, params...); err != nil {
			b.Fatalf("%v: %v", class, err)
		}
	}
}

// BenchmarkFig10TPCC measures the TPC-C mix end to end on plaintext and
// CryptDB (Figure 10's two curves at the current GOMAXPROCS; run with
// -cpu 1,2,4,8 for the full figure).
func BenchmarkFig10TPCC(b *testing.B) {
	plain, crypt, _ := fixtures(b)
	b.Run("MySQL", func(b *testing.B) {
		g := tpcc.NewGenerator(benchCfg)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_, sql, params := g.Next()
				if _, err := plain.Execute(sql, params...); err != nil {
					b.Fatal(err)
				}
			}
		})
		_ = g
	})
	b.Run("CryptDB", func(b *testing.B) {
		g := tpcc.NewGenerator(benchCfg)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_, sql, params := g.Next()
				if _, err := crypt.Execute(sql, params...); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkFig11QueryTypes measures each Figure 11 query class on the three
// systems. Server-vs-proxy split is reported by cmd/cryptdb-bench -fig 11.
func BenchmarkFig11QueryTypes(b *testing.B) {
	plain, crypt, straw := fixtures(b)
	for _, class := range tpcc.Classes() {
		class := class
		b.Run(fmt.Sprintf("%s/MySQL", class), func(b *testing.B) { runClass(b, plain, class) })
		b.Run(fmt.Sprintf("%s/CryptDB", class), func(b *testing.B) { runClass(b, crypt, class) })
		// The strawman is orders of magnitude slower; skip the heaviest
		// classes to keep default bench runs short.
		if class == tpcc.Equality || class == tpcc.Delete || class == tpcc.Insert {
			b.Run(fmt.Sprintf("%s/Strawman", class), func(b *testing.B) { runClass(b, straw, class) })
		}
	}
}

// BenchmarkFig12ProxyLatency measures end-to-end proxy latency per class in
// the steady state (Figure 12's CryptDB columns).
func BenchmarkFig12ProxyLatency(b *testing.B) {
	_, crypt, _ := fixtures(b)
	for _, class := range tpcc.Classes() {
		class := class
		b.Run(class.String(), func(b *testing.B) { runClass(b, crypt, class) })
	}
}

//
// Figure 13: cryptographic microbenchmarks.
//

func BenchmarkFig13PRP64(b *testing.B) {
	c := feistel.New([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encrypt(uint64(i))
	}
}

func BenchmarkFig13AESCBC1KB(b *testing.B) {
	iv, err := rnd.NewIV()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rnd.Bytes([]byte("bench"), iv, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13OPEEncrypt(b *testing.B) {
	c := ope.New([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encrypt(uint64(i*7919) % (1 << 32)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13SearchEncrypt(b *testing.B) {
	c := search.New([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncryptText("confidential"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13SearchMatch(b *testing.B) {
	c := search.New([]byte("bench"))
	blob, err := c.EncryptText("confidential data here")
	if err != nil {
		b.Fatal(err)
	}
	tok := c.TokenFor("data")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.Match(blob, tok)
	}
}

var homKeyOnce sync.Once
var homKeyVal *hom.Key

func benchHOMKey(b *testing.B) *hom.Key {
	homKeyOnce.Do(func() {
		k, err := hom.GenerateKey(hom.DefaultBits)
		if err != nil {
			b.Fatal(err)
		}
		homKeyVal = k
	})
	return homKeyVal
}

func BenchmarkFig13HOMEncrypt(b *testing.B) {
	k := benchHOMKey(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.EncryptInt64(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13HOMDecrypt(b *testing.B) {
	k := benchHOMKey(b)
	ct, err := k.EncryptInt64(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DecryptInt64(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13HOMAdd(b *testing.B) {
	k := benchHOMKey(b)
	c1, _ := k.EncryptInt64(1)
	c2, _ := k.EncryptInt64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Add(c1, c2)
	}
}

func BenchmarkFig13JoinAdjCompute(b *testing.B) {
	k := joinadj.DeriveKey([]byte("col"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Compute([]byte("k0"), []byte("value"))
	}
}

func BenchmarkFig13JoinAdjAdjust(b *testing.B) {
	k1 := joinadj.DeriveKey([]byte("col1"))
	k2 := joinadj.DeriveKey([]byte("col2"))
	val := k2.Compute([]byte("k0"), []byte("value"))
	delta, err := k1.Delta(k2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := joinadj.Adjust(val, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14Forum measures forum requests/second on the three
// configurations of Figure 14 (sequential; the formatted 10-client run is
// cmd/cryptdb-bench -fig 14).
func BenchmarkFig14Forum(b *testing.B) {
	cfg := forum.Config{Users: 6, Forums: 2, Posts: 10, Msgs: 5, Seed: 1}

	b.Run("MySQL", func(b *testing.B) {
		ex := workload.PlainDB{DB: sqldb.New()}
		if err := forum.Load(ex, cfg, nil); err != nil {
			b.Fatal(err)
		}
		sim := forum.NewSim(ex, cfg, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sim.Mix(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MySQLProxy", func(b *testing.B) {
		ex := workload.Passthrough{DB: sqldb.New()}
		if err := forum.Load(ex, cfg, nil); err != nil {
			b.Fatal(err)
		}
		sim := forum.NewSim(ex, cfg, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sim.Mix(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CryptDB", func(b *testing.B) {
		p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 512})
		if err != nil {
			b.Fatal(err)
		}
		m := mp.New(p, mp.Options{RSABits: 1024})
		// Only WriteMsg requests (~20% of the mix) mint principals.
		if err := m.PrecomputeKeypairs(40 + b.N/4); err != nil {
			b.Fatal(err)
		}
		acfg := cfg
		acfg.Annotated = true
		if err := forum.Load(m, acfg, m.Login); err != nil {
			b.Fatal(err)
		}
		sim := forum.NewSim(m, acfg, m.Login)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sim.Mix(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig07TraceAnalysis runs the Figure 7/9 trace analysis pipeline.
func BenchmarkFig07TraceAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		apps := trace.GenerateTrace(4, 0.001, int64(i+1))
		if _, err := analysis.AnalyzeApps(apps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdjustableDecrypt measures stripping a RND layer from a whole
// column (§8.4.4): the one-time cost of an onion adjustment. Between
// iterations the §3.5.1 re-encryption extension restores the RND layer off
// the clock, so the same loaded table is stripped repeatedly.
func BenchmarkAdjustableDecrypt(b *testing.B) {
	const rows = 200
	p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Execute("CREATE TABLE t (a INT, s TEXT)"); err != nil {
		b.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		if _, err := p.Execute("INSERT INTO t (a, s) VALUES (?, ?)",
			sqldb.Int(int64(r)), sqldb.Text("payload-string-for-the-row")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// First equality predicate strips RND across the column.
		if _, err := p.Execute("SELECT a FROM t WHERE s = 'x'"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := p.RaiseOnion("t", "s", onion.Eq); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

//
// Bulk-load pipeline (§3.1 "batch encryption, e.g., database loads").
//

const bulkRowsPerLoad = 96

// newBulkProxy builds a fresh proxy for one bulk-load benchmark arm.
func newBulkProxy(b *testing.B, workers int) *proxy.Proxy {
	b.Helper()
	p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256, BatchWorkers: workers})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Execute("CREATE TABLE load (id INT, tag TEXT, qty INT)"); err != nil {
		b.Fatal(err)
	}
	return p
}

// bulkScatter spreads keys over the OPE domain so every iteration
// exercises fresh, non-adjacent tree paths — the bulk-load case the sorted
// batch pass targets.
func bulkScatter(k int) int64 { return int64(uint32(k) * 2654435761 % (1 << 31)) }

// bulkInsertSQL builds one multi-row INSERT of fresh scattered values.
func bulkInsertSQL(base int) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO load (id, tag, qty) VALUES ")
	for r := 0; r < bulkRowsPerLoad; r++ {
		if r > 0 {
			sb.WriteString(", ")
		}
		k := base + r
		fmt.Fprintf(&sb, "(%d, 'tag-%d', %d)", bulkScatter(k), k%13, bulkScatter(k+1<<20))
	}
	return sb.String()
}

// topUpHOM keeps the Paillier r^n pool filled off the clock so the bulk
// benchmarks measure the encryption pipeline, not pool refills (§3.5.2).
func topUpHOM(b *testing.B, p *proxy.Proxy, need int) {
	b.Helper()
	if p.HOMKey().PoolSize() < need {
		b.StopTimer()
		if err := p.HOMKey().Precompute(4 * need); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkBulkInsert contrasts the three stages of the batched, parallel
// encryption pipeline on cold bulk loads (a fresh proxy per iteration, as
// in the paper's "database loads" scenario): row-at-a-time statements on
// one goroutine (the seed's behavior), one multi-row statement on a single
// worker (statement amortization plus the sorted ope.EncryptBatch
// pre-pass), and the full worker pool (BatchWorkers=GOMAXPROCS).
func BenchmarkBulkInsert(b *testing.B) {
	// Both INT columns carry an Add onion: two HOM encryptions per row.
	const homPerLoad = 2 * bulkRowsPerLoad
	arm := func(workers int, load func(b *testing.B, p *proxy.Proxy)) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer() // proxy/key setup and HOM pool are off the clock
				p := newBulkProxy(b, workers)
				topUpHOM(b, p, homPerLoad)
				b.StartTimer()
				load(b, p)
			}
			b.ReportMetric(float64(b.N)*bulkRowsPerLoad/b.Elapsed().Seconds(), "rows/s")
		}
	}
	oneStatement := func(b *testing.B, p *proxy.Proxy) {
		if _, err := p.Execute(bulkInsertSQL(0)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("serial-rows", arm(1, func(b *testing.B, p *proxy.Proxy) {
		for k := 0; k < bulkRowsPerLoad; k++ {
			if _, err := p.Execute(fmt.Sprintf("INSERT INTO load (id, tag, qty) VALUES (%d, 'tag-%d', %d)",
				bulkScatter(k), k%13, bulkScatter(k+1<<20))); err != nil {
				b.Fatal(err)
			}
		}
	}))
	b.Run("batched-one-worker", arm(1, oneStatement))
	b.Run("parallel-pool", arm(0, oneStatement)) // GOMAXPROCS workers
}

// BenchmarkBulkDecrypt measures result-set decryption of a 400-row SELECT
// on the serial path vs the row-parallel worker pool.
func BenchmarkBulkDecrypt(b *testing.B) {
	const rows = 400
	for _, arm := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel-pool", 0},
	} {
		b.Run(arm.name, func(b *testing.B) {
			p := newBulkProxy(b, arm.workers)
			for base := 0; base < rows; base += bulkRowsPerLoad {
				if _, err := p.Execute(bulkInsertSQL(base)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := p.Execute("SELECT id, tag, qty FROM load"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			got := 0
			for i := 0; i < b.N; i++ {
				res, err := p.Execute("SELECT id, tag, qty FROM load")
				if err != nil {
					b.Fatal(err)
				}
				if got = len(res.Rows); got < rows {
					b.Fatalf("got %d rows", got)
				}
			}
			b.ReportMetric(float64(b.N)*float64(got)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkAblationOPECache quantifies §3.1's batch-tree optimization.
func BenchmarkAblationOPECache(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		c := ope.New([]byte("bench"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Encrypt(uint64(i*31) % (1 << 32)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		c := ope.New([]byte("bench"))
		c.DisableCache()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Encrypt(uint64(i*31) % (1 << 32)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHOMPrecompute quantifies §3.5.2's r^n pool. Pool refills
// cost as much as unpooled encryption, so both arms run a fixed iteration
// count and report custom metrics (letting b.N ramp would spend minutes
// refilling).
func BenchmarkAblationHOMPrecompute(b *testing.B) {
	k := benchHOMKey(b)
	const n = 150
	for k.PoolSize() > 0 { // drain any leftover pool
		if _, err := k.EncryptInt64(0); err != nil {
			b.Fatal(err)
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := k.EncryptInt64(7); err != nil {
			b.Fatal(err)
		}
	}
	unpooled := time.Since(start)

	if err := k.Precompute(n); err != nil {
		b.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, err := k.EncryptInt64(7); err != nil {
			b.Fatal(err)
		}
	}
	pooled := time.Since(start)

	b.ReportMetric(float64(unpooled.Nanoseconds())/n, "ns/unpooled-enc")
	b.ReportMetric(float64(pooled.Nanoseconds())/n, "ns/pooled-enc")
	for i := 0; i < b.N; i++ {
		// The comparison above is the payload; keep the b.N contract.
	}
}

// BenchmarkAblationIndexes contrasts a DET-indexed lookup with the
// strawman's decrypt-every-row scan — why Figure 11's strawman collapses.
func BenchmarkAblationIndexes(b *testing.B) {
	const rows = 1000
	p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Execute("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Execute("CREATE INDEX kvi ON kv (k)"); err != nil {
		b.Fatal(err)
	}
	sm, err := strawman.New(sqldb.New())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sm.Execute("CREATE TABLE kv (k INT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := p.Execute("INSERT INTO kv (k, v) VALUES (?, ?)", sqldb.Int(int64(i)), sqldb.Text("v")); err != nil {
			b.Fatal(err)
		}
		if _, err := sm.Execute("INSERT INTO kv (k, v) VALUES (?, ?)", sqldb.Int(int64(i)), sqldb.Text("v")); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := p.Execute("SELECT v FROM kv WHERE k = ?", sqldb.Int(1)); err != nil {
		b.Fatal(err)
	}
	b.Run("CryptDB-DET-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Execute("SELECT v FROM kv WHERE k = ?", sqldb.Int(int64(i%rows))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Strawman-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sm.Execute("SELECT v FROM kv WHERE k = ?", sqldb.Int(int64(i%rows))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

//
// Ordered-index range scans (§3.3): the scan -> index win at 100k rows.
//

const rangeRows = 100_000

var (
	rangeOnce   sync.Once
	rangeIdxDB  *sqldb.DB
	rangeScanDB *sqldb.DB
	rangeFixErr error
)

// rangeKey aliases the shared scatter function so benchmark bodies and the
// cryptdb-bench rangescan figure probe the same key domain.
func rangeKey(i int) int64 { return workload.RangeTableKey(i) }

// rangeFixtures builds two identical 100k-row tables, one with the default
// (hash + ordered) index on k, one with no index.
func rangeFixtures(b *testing.B) (indexed, scan *sqldb.DB) {
	b.Helper()
	rangeOnce.Do(func() {
		build := func(withIndex bool) (*sqldb.DB, error) {
			db := sqldb.New()
			return db, workload.LoadRangeTable(db, rangeRows, withIndex)
		}
		rangeIdxDB, rangeFixErr = build(true)
		if rangeFixErr == nil {
			rangeScanDB, rangeFixErr = build(false)
		}
	})
	if rangeFixErr != nil {
		b.Fatal(rangeFixErr)
	}
	return rangeIdxDB, rangeScanDB
}

// BenchmarkRangeQuery measures a narrow range predicate (~100 of 100k rows)
// on the ordered-index path vs the full-scan path.
func BenchmarkRangeQuery(b *testing.B) {
	idx, scan := rangeFixtures(b)
	st, err := sqlparser.Parse("SELECT v FROM r WHERE k >= ? AND k < ?")
	if err != nil {
		b.Fatal(err)
	}
	arm := func(db *sqldb.DB) func(*testing.B) {
		return func(b *testing.B) {
			got := 0
			for i := 0; i < b.N; i++ {
				lo := rangeKey(i*7919) % ((1 << 30) - (1 << 20))
				res, err := db.Exec(st, sqldb.Int(lo), sqldb.Int(lo+(1<<20)))
				if err != nil {
					b.Fatal(err)
				}
				got += len(res.Rows)
			}
			b.ReportMetric(float64(got)/float64(b.N), "rows/query")
		}
	}
	b.Run("indexed", arm(idx))
	b.Run("scan", arm(scan))
}

// BenchmarkOrderByLimit measures ORDER BY k LIMIT 10 with a lower bound:
// the ordered index streams the first matches and terminates early; the
// scan path materializes and sorts every matching row.
func BenchmarkOrderByLimit(b *testing.B) {
	idx, scan := rangeFixtures(b)
	st, err := sqlparser.Parse("SELECT v FROM r WHERE k >= ? ORDER BY k LIMIT 10")
	if err != nil {
		b.Fatal(err)
	}
	arm := func(db *sqldb.DB) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lo := rangeKey(i * 104729)
				res, err := db.Exec(st, sqldb.Int(lo))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) > 10 {
					b.Fatalf("limit ignored: %d rows", len(res.Rows))
				}
			}
		}
	}
	b.Run("indexed", arm(idx))
	b.Run("scan", arm(scan))
}

// BenchmarkMinMaxEndpoint measures MIN/MAX answered from index endpoints vs
// aggregated over a scan.
func BenchmarkMinMaxEndpoint(b *testing.B) {
	idx, scan := rangeFixtures(b)
	st, err := sqlparser.Parse("SELECT MIN(k), MAX(k) FROM r")
	if err != nil {
		b.Fatal(err)
	}
	arm := func(db *sqldb.DB) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(st); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("indexed", arm(idx))
	b.Run("scan", arm(scan))
}

// BenchmarkASTCache measures repeated-statement throughput with the parse
// cache on vs off (every other cost held identical: same proxy layout, same
// tiny indexed table).
func BenchmarkASTCache(b *testing.B) {
	arm := func(cacheSize int) func(*testing.B) {
		return func(b *testing.B) {
			p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256, ASTCacheSize: cacheSize})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Execute("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
				b.Fatal(err)
			}
			if _, err := p.Execute("CREATE INDEX kvk ON kv (k)"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				if _, err := p.Execute("INSERT INTO kv (k, v) VALUES (?, ?)",
					sqldb.Int(int64(i)), sqldb.Text("payload")); err != nil {
					b.Fatal(err)
				}
			}
			const q = "SELECT v FROM kv WHERE k = ? AND k >= 0 AND k <= 9999 AND NOT (k = -1)"
			if _, err := p.Execute(q, sqldb.Int(1)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(q, sqldb.Int(int64(i%64))); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cached", arm(0))
	b.Run("uncached", arm(-1))
}

//
// Sharded store write scaling (the shardscale figure): single-statement
// write throughput at 1/2/4/8 shards, 16 concurrent sessions, fsync off so
// the statement-lock split (not fsync amortization vs. cohort
// fragmentation — the shardscale figure shows both arms) is what scales.
// Rows route by primary-key hash, so each shard runs its own statement
// lock and WAL; throughput should rise with the shard count past the
// single-store 16-session ceiling given cores to run the shards on, and
// the 1-shard arm must not regress against store/single.
//

// BenchmarkShardedWriters measures routed single-row INSERT throughput.
func BenchmarkShardedWriters(b *testing.B) {
	const sessions = 16
	run := func(b *testing.B, open func(b *testing.B) store.Engine) {
		eng := open(b)
		defer eng.Close()
		if _, err := eng.ExecSQL("CREATE TABLE t (id INT PRIMARY KEY, payload TEXT)"); err != nil {
			b.Fatal(err)
		}
		st, err := sqlparser.Parse("INSERT INTO t (id, payload) VALUES (?, ?)")
		if err != nil {
			b.Fatal(err)
		}
		payload := strings.Repeat("x", 64)
		var next int64
		b.ResetTimer()
		var wg sync.WaitGroup
		errCh := make(chan error, sessions)
		for g := 0; g < sessions; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := eng.NewConn()
				defer conn.Close()
				for {
					i := atomic.AddInt64(&next, 1)
					if i > int64(b.N) {
						return
					}
					if _, err := conn.Exec(st, sqldb.Int(i), sqldb.Text(payload)); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		close(errCh)
		for err := range errCh {
			b.Fatal(err)
		}
	}
	b.Run("single", func(b *testing.B) {
		run(b, func(b *testing.B) store.Engine {
			eng, err := single.Open(b.TempDir(), sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
			if err != nil {
				b.Fatal(err)
			}
			return eng
		})
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			n := shards
			run(b, func(b *testing.B) store.Engine {
				eng, err := sharded.Open(b.TempDir(), n, sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
				if err != nil {
					b.Fatal(err)
				}
				return eng
			})
		})
	}
}

//
// Compiled-execution benchmarks (cryptdb-bench -fig joins). Each family
// runs the same statement through the compiled operator pipeline and the
// AST interpreter (SetCompiledExec toggles per arm), so the ratio is the
// lowering's speedup with the data and plan held fixed.
//

var (
	execFixOnce sync.Once
	execFixErr  error
	execJoinDB  *sqldb.DB
	execGroupDB *sqldb.DB
)

func execFixtures(b *testing.B) (*sqldb.DB, *sqldb.DB) {
	b.Helper()
	execFixOnce.Do(func() {
		load := func(db *sqldb.DB, ddl []string, insert func(lo, hi int) string, n int) {
			if execFixErr != nil {
				return
			}
			for _, sql := range ddl {
				if _, execFixErr = db.ExecSQL(sql); execFixErr != nil {
					return
				}
			}
			for lo := 0; lo < n; lo += 1000 {
				hi := lo + 1000
				if hi > n {
					hi = n
				}
				if _, execFixErr = db.ExecSQL(insert(lo, hi)); execFixErr != nil {
					return
				}
			}
		}
		execJoinDB = sqldb.New()
		load(execJoinDB, []string{
			"CREATE TABLE ja (id INT PRIMARY KEY, k INT)",
			"CREATE TABLE jb (id INT PRIMARY KEY, k INT)",
			"CREATE INDEX jb_k ON jb (k) USING HASH",
		}, func(lo, hi int) string {
			var sb strings.Builder
			sb.WriteString("INSERT INTO ja (id, k) VALUES ")
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d)", i, i)
			}
			return sb.String()
		}, 10000)
		load(execJoinDB, nil, func(lo, hi int) string {
			var sb strings.Builder
			sb.WriteString("INSERT INTO jb (id, k) VALUES ")
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d)", i, i)
			}
			return sb.String()
		}, 10000)
		load(execJoinDB, []string{
			"CREATE TABLE jc (id INT PRIMARY KEY, k INT)",
		}, func(lo, hi int) string {
			var sb strings.Builder
			sb.WriteString("INSERT INTO jc (id, k) VALUES ")
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d)", i, i)
			}
			return sb.String()
		}, 10000)
		execGroupDB = sqldb.New()
		load(execGroupDB, []string{
			"CREATE TABLE jg (id INT PRIMARY KEY, grp INT, val INT)",
		}, func(lo, hi int) string {
			var sb strings.Builder
			sb.WriteString("INSERT INTO jg (id, grp, val) VALUES ")
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d, %d)", i, i%100, i%977)
			}
			return sb.String()
		}, 100000)
	})
	if execFixErr != nil {
		b.Fatal(execFixErr)
	}
	return execJoinDB, execGroupDB
}

func runExecArms(b *testing.B, db *sqldb.DB, sql string, wantRows int) {
	runExecArmsOpt(b, db, sql, wantRows, false)
}

// runExecArmsOpt is runExecArms with an opt-out for interpreted arms that
// degrade to quadratic nested loops: those take minutes per op, so -short
// (the CI bench smoke) skips them and measures only the compiled arm.
func runExecArmsOpt(b *testing.B, db *sqldb.DB, sql string, wantRows int, quadraticInterp bool) {
	for _, arm := range []struct {
		name     string
		compiled bool
	}{{"Compiled", true}, {"Interpreted", false}} {
		b.Run(arm.name, func(b *testing.B) {
			if !arm.compiled && quadraticInterp && testing.Short() {
				b.Skip("interpreted arm nested-loops ~100M pairs (minutes/op); run without -short")
			}
			db.SetCompiledExec(arm.compiled)
			defer db.SetCompiledExec(true)
			before := db.PlanCounters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.ExecSQL(sql)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != wantRows {
					b.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(wantRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			after := db.PlanCounters()
			if arm.compiled && after.Compiled-before.Compiled < int64(b.N) {
				b.Fatalf("compiled arm fell back: %+v -> %+v", before, after)
			}
			if !arm.compiled && after.Interpreted-before.Interpreted < int64(b.N) {
				b.Fatalf("interpreted arm compiled: %+v -> %+v", before, after)
			}
		})
	}
}

// BenchmarkJoinsEquiJoin joins 10k x 10k rows on an unindexed DET-style
// key: the compiled engine builds a transient hash table while the
// interpreter has no probe index and degrades to a nested loop — the
// capability gap the compiled layer exists to close.
func BenchmarkJoinsEquiJoin(b *testing.B) {
	joinDB, _ := execFixtures(b)
	runExecArmsOpt(b, joinDB, "SELECT ja.id, jc.id FROM ja, jc WHERE ja.k = jc.k", 10000, true)
}

// BenchmarkJoinsEquiJoinIndexed joins the same 10k x 10k rows with a hash
// index on the probe side, so both arms join in linear time: the compiled
// engine probes the persistent index directly and the interpreter gets its
// indexed probe. This isolates per-row execution overhead.
func BenchmarkJoinsEquiJoinIndexed(b *testing.B) {
	joinDB, _ := execFixtures(b)
	runExecArms(b, joinDB, "SELECT ja.id, jb.id FROM ja, jb WHERE ja.k = jb.k", 10000)
}

// BenchmarkJoinsGroupBy aggregates 100k rows into 100 groups.
func BenchmarkJoinsGroupBy(b *testing.B) {
	_, groupDB := execFixtures(b)
	runExecArms(b, groupDB, "SELECT grp, COUNT(*), SUM(val), MIN(val) FROM jg GROUP BY grp", 100)
}
