package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mp"
	"repro/internal/onion"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/workload"
)

// TestEquivalenceRandomized is the core end-to-end property: any workload
// CryptDB supports returns exactly the same results through the proxy as it
// does on a plaintext database. Random schemas, values and queries.
func TestEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	plain := workload.PlainDB{DB: sqldb.New()}
	p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	run := func(sql string, params ...sqldb.Value) (*sqldb.Result, *sqldb.Result) {
		t.Helper()
		rp, errP := plain.Execute(sql, params...)
		re, errE := p.Execute(sql, params...)
		if (errP == nil) != (errE == nil) {
			t.Fatalf("%s: plain err %v, encrypted err %v", sql, errP, errE)
		}
		if errP != nil {
			return nil, nil
		}
		return rp, re
	}
	compare := func(sql string, rp, re *sqldb.Result) {
		t.Helper()
		if rp == nil {
			return
		}
		if len(rp.Rows) != len(re.Rows) {
			t.Fatalf("%s: plain %d rows, encrypted %d rows", sql, len(rp.Rows), len(re.Rows))
		}
		for i := range rp.Rows {
			for j := range rp.Rows[i] {
				a, b := rp.Rows[i][j], re.Rows[i][j]
				if a.IsNull() && b.IsNull() {
					continue
				}
				if !a.Equal(b) {
					t.Fatalf("%s: row %d col %d: %v vs %v", sql, i, j, a, b)
				}
			}
		}
	}

	run("CREATE TABLE inv (id INT PRIMARY KEY, sku TEXT, qty INT, price INT, note TEXT)")
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	for i := 1; i <= 60; i++ {
		note := fmt.Sprintf("%s %s item-%d", words[rng.Intn(len(words))], words[rng.Intn(len(words))], i)
		sql := "INSERT INTO inv (id, sku, qty, price, note) VALUES (?, ?, ?, ?, ?)"
		params := []sqldb.Value{
			sqldb.Int(int64(i)),
			sqldb.Text(fmt.Sprintf("sku-%d", rng.Intn(20))),
			sqldb.Int(int64(rng.Intn(100))),
			sqldb.Int(int64(rng.Intn(10000) - 5000)),
			sqldb.Text(note),
		}
		rp, re := run(sql, params...)
		compare(sql, rp, re)
	}

	queries := []string{
		"SELECT id, qty FROM inv WHERE id = 7",
		"SELECT COUNT(*) FROM inv WHERE sku = 'sku-3'",
		"SELECT id FROM inv WHERE qty > 50",
		"SELECT id FROM inv WHERE price BETWEEN -1000 AND 1000",
		"SELECT SUM(price) FROM inv",
		"SELECT sku, COUNT(*), SUM(qty) FROM inv GROUP BY sku ORDER BY sku",
		"SELECT MIN(price), MAX(price), AVG(qty) FROM inv",
		"SELECT DISTINCT sku FROM inv",
		"SELECT id FROM inv WHERE note LIKE '%alpha%'",
		"SELECT id FROM inv WHERE qty IN (1, 2, 3, 4, 5)",
		"SELECT id, price * 2 + 1 FROM inv WHERE id = 9",
		"SELECT id FROM inv ORDER BY price DESC LIMIT 5",
		"SELECT id FROM inv ORDER BY qty, id",
		"SELECT COUNT(DISTINCT sku) FROM inv",
		"SELECT sku FROM inv GROUP BY sku HAVING COUNT(*) > 2",
		"SELECT sku FROM inv GROUP BY sku HAVING SUM(qty) > 100",
	}
	for _, q := range queries {
		rp, re := run(q)
		compare(q, rp, re)
	}

	// Mutations, then re-verify a sample of reads.
	muts := []string{
		"UPDATE inv SET qty = qty + 5 WHERE id = 3",
		"UPDATE inv SET note = 'replaced note' WHERE id = 4",
		"UPDATE inv SET price = price * 2 WHERE id = 5",
		"DELETE FROM inv WHERE id = 6",
	}
	for _, q := range muts {
		run(q)
	}
	for _, q := range []string{
		"SELECT qty FROM inv WHERE id = 3",
		"SELECT note FROM inv WHERE id = 4",
		"SELECT price FROM inv WHERE id = 5",
		"SELECT COUNT(*) FROM inv",
		"SELECT SUM(qty) FROM inv",
		"SELECT id FROM inv WHERE qty > 50",
	} {
		rp, re := run(q)
		compare(q, rp, re)
	}
}

// TestFullLifecycle exercises training -> planned deployment -> adjustment
// -> re-encryption -> re-adjustment across the whole stack.
func TestFullLifecycle(t *testing.T) {
	ddl := []string{"CREATE TABLE ledger (acct INT, amount INT, memo TEXT)"}
	queries := []proxy.TrainQuery{
		{SQL: "SELECT memo FROM ledger WHERE acct = ?", Params: []sqldb.Value{sqldb.Int(1)}},
		{SQL: "SELECT SUM(amount) FROM ledger"},
	}
	plan, err := proxy.TrainPlan(ddl, queries)
	if err != nil {
		t.Fatal(err)
	}
	p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ddl {
		if _, err := p.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := p.Execute("INSERT INTO ledger (acct, amount, memo) VALUES (?, ?, ?)",
			sqldb.Int(int64(i%3)), sqldb.Int(int64(i*10)), sqldb.Text(fmt.Sprintf("memo %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Execute("SELECT SUM(amount) FROM ledger")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 30; i++ {
		want += int64(i * 10)
	}
	if res.Rows[0][0].I != want {
		t.Fatalf("sum = %v, want %d", res.Rows[0][0], want)
	}

	// Increment then compare: resync path under a plan.
	if _, err := p.Execute("UPDATE ledger SET amount = amount + 1000 WHERE acct = 1"); err != nil {
		t.Fatal(err)
	}
	res, err = p.Execute("SELECT COUNT(*) FROM ledger WHERE acct = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 10 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	res, err = p.Execute("SELECT SUM(amount) FROM ledger")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != want+10*1000 {
		t.Fatalf("sum after increments = %v", res.Rows[0][0])
	}
}

// TestThreatModel1EndToEnd verifies the §2.1 guarantee across the whole
// stack: a curious DBA (full read access to the DBMS) learns no plaintext
// and no schema names even while the application actively queries.
func TestThreatModel1EndToEnd(t *testing.T) {
	server := sqldb.New()
	p, err := proxy.New(server, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	secrets := []string{"diagnosis-hypertension", "ssn-123-45-6789", "patients", "diagnosis"}
	if _, err := p.Execute("CREATE TABLE patients (pid INT, diagnosis TEXT, ssn TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("INSERT INTO patients (pid, diagnosis, ssn) VALUES (1, 'diagnosis-hypertension', 'ssn-123-45-6789')"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("SELECT diagnosis FROM patients WHERE pid = 1"); err != nil {
		t.Fatal(err)
	}

	// The DBA's view: every table, every column name, every byte.
	for _, tn := range server.TableNames() {
		res, err := server.ExecSQL("SELECT * FROM " + tn)
		if err != nil {
			t.Fatal(err)
		}
		view := tn + " " + strings.Join(res.Columns, " ")
		for _, row := range res.Rows {
			for _, v := range row {
				view += " " + v.String()
			}
		}
		for _, s := range secrets {
			if strings.Contains(view, s) {
				t.Fatalf("DBA view leaks %q", s)
			}
		}
	}
}

// TestThreatModel2EndToEnd verifies §2.2 end to end: with every server
// compromised after all users log out, nothing decrypts.
func TestThreatModel2EndToEnd(t *testing.T) {
	server := sqldb.New()
	p, err := proxy.New(server, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	m := mp.New(p, mp.Options{RSABits: 1024})
	script := []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE acct",
		`CREATE TABLE notes (owner INT PLAIN, note TEXT ENC FOR (owner acct))`,
		`CREATE TABLE owners (oid INT PLAIN, uname TEXT, (uname physical_user) SPEAKS FOR (oid acct))`,
	}
	for _, q := range script {
		if _, err := m.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Execute("INSERT INTO cryptdb_active (username, password) VALUES ('u1', 'pw1')"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute("INSERT INTO owners (oid, uname) VALUES (1, 'u1')"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute("INSERT INTO notes (owner, note) VALUES (1, 'the secret note')"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute("DELETE FROM cryptdb_active WHERE username = 'u1'"); err != nil {
		t.Fatal(err)
	}

	// Adversary holds the proxy object AND the whole DBMS.
	if _, err := m.Execute("SELECT note FROM notes WHERE owner = 1"); err == nil {
		t.Fatal("logged-out user's note decrypted")
	}
	for _, tn := range server.TableNames() {
		res, err := server.ExecSQL("SELECT * FROM " + tn)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			for _, v := range row {
				if strings.Contains(v.String(), "the secret note") ||
					strings.Contains(v.String(), "pw1") {
					t.Fatalf("server state leaks secrets: %v", v)
				}
			}
		}
	}
}

// TestOPERangeIndexEquivalence proves the tentpole end to end: a
// proxy-issued range workload over an OPE column returns identical rows
// whether or not the server holds the ordered index, and the indexed server
// actually answers through index range scans, index-ordered LIMIT walks and
// index-endpoint MIN/MAX rather than full scans.
func TestOPERangeIndexEquivalence(t *testing.T) {
	// Keep only the onions this workload needs so the 2k-row load skips
	// Paillier (§3.5.2 "discard onions that are not needed").
	plan := proxy.OnionPlan{
		"events.ts":  {onion.Eq, onion.Ord},
		"events.val": {onion.Eq},
	}
	newProxy := func(indexed bool) *proxy.Proxy {
		p, err := proxy.New(sqldb.New(), proxy.Options{HOMBits: 256, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Execute("CREATE TABLE events (ts INT, val INT)"); err != nil {
			t.Fatal(err)
		}
		if indexed {
			if _, err := p.Execute("CREATE INDEX events_ts ON events (ts)"); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	indexed, scan := newProxy(true), newProxy(false)

	const rows = 2000
	load := func(p *proxy.Proxy) {
		t.Helper()
		for base := 0; base < rows; base += 200 {
			sql := "INSERT INTO events (ts, val) VALUES "
			for i := 0; i < 200; i++ {
				if i > 0 {
					sql += ", "
				}
				k := base + i
				ts := fmt.Sprintf("%d", int64(uint32(k)*2654435761%100000))
				if k%97 == 0 {
					ts = "NULL" // NULLs stay unencrypted and outside ranges
				}
				sql += fmt.Sprintf("(%s, %d)", ts, k)
			}
			if _, err := p.Execute(sql); err != nil {
				t.Fatal(err)
			}
		}
	}
	load(indexed)
	load(scan)

	rowSet := func(res *sqldb.Result) map[string]int {
		out := make(map[string]int, len(res.Rows))
		for _, row := range res.Rows {
			key := ""
			for _, v := range row {
				key += v.Key() + "\x1f"
			}
			out[key]++
		}
		return out
	}
	compare := func(sql string, ordered bool, params ...sqldb.Value) {
		t.Helper()
		ri, err := indexed.Execute(sql, params...)
		if err != nil {
			t.Fatalf("indexed %s: %v", sql, err)
		}
		rs, err := scan.Execute(sql, params...)
		if err != nil {
			t.Fatalf("scan %s: %v", sql, err)
		}
		if len(ri.Rows) != len(rs.Rows) {
			t.Fatalf("%s: %d vs %d rows", sql, len(ri.Rows), len(rs.Rows))
		}
		a, b := rowSet(ri), rowSet(rs)
		for k, n := range a {
			if b[k] != n {
				t.Fatalf("%s: result sets differ", sql)
			}
		}
		if ordered {
			for i := range ri.Rows {
				x, y := ri.Rows[i][0], rs.Rows[i][0]
				if x.IsNull() != y.IsNull() || (!x.IsNull() && !x.Equal(y)) {
					t.Fatalf("%s: order differs at %d: %v vs %v", sql, i, x, y)
				}
			}
		}
	}

	for _, band := range []int64{0, 10000, 50000, 99000} {
		compare("SELECT val FROM events WHERE ts >= ? AND ts < ?", false,
			sqldb.Int(band), sqldb.Int(band+2500))
		compare("SELECT val FROM events WHERE ts BETWEEN ? AND ?", false,
			sqldb.Int(band), sqldb.Int(band+999))
	}
	compare("SELECT ts, val FROM events WHERE ts > ? ORDER BY ts LIMIT 10", true, sqldb.Int(30000))
	compare("SELECT ts, val FROM events WHERE ts < ? ORDER BY ts DESC LIMIT 7", true, sqldb.Int(80000))
	compare("SELECT MIN(ts) FROM events", false)
	compare("SELECT MAX(ts) FROM events", false)

	// The indexed server must have used its ordered index; the plain one
	// cannot have.
	pci := indexed.DB().PlanCounters()
	if pci.RangeScans == 0 || pci.OrderedScans == 0 || pci.MinMaxIndex == 0 {
		t.Fatalf("indexed server did not use ordered-index paths: %+v", pci)
	}
	pcs := scan.DB().PlanCounters()
	if pcs.RangeScans != 0 || pcs.OrderedScans != 0 || pcs.MinMaxIndex != 0 {
		t.Fatalf("unindexed server claims index use: %+v", pcs)
	}
}
